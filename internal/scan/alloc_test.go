package scan

import (
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// The alloc guards pin the probe hot path: a ProbeOne against the sealed
// world must not allocate at all for ICMP/TCP/QUIC (response structs are
// values, lookups are binary searches, counters are striped atomics), and
// stays within a small constant for UDP/53, where responses necessarily
// carry freshly encoded wire bytes. CI runs these with the ordinary test
// job, so a regression on the innermost loop fails the build instead of
// only drifting the benchmarks.

// allocScanner builds a sealed test world and a loss-free scanner.
func allocScanner(t testing.TB) *Scanner {
	t.Helper()
	n := testNet(t)
	n.Seal()
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	return New(n, cfg)
}

func probeAllocs(t *testing.T, s *Scanner, target ip6.Addr, proto netmodel.Protocol) float64 {
	t.Helper()
	var sink Result
	allocs := testing.AllocsPerRun(200, func() {
		sink = s.ProbeOne(target, proto, 5)
	})
	_ = sink
	return allocs
}

func TestProbeOneAllocFree(t *testing.T) {
	s := allocScanner(t)
	web := ip6.MustParseAddr("2001:100::80")      // ICMP+TCP+QUIC responder
	aliased := ip6.MustParseAddr("2001:100:a::b") // aliased /64
	dark := ip6.MustParseAddr("2001:100::dead")   // routed, silent

	for _, tc := range []struct {
		name   string
		target ip6.Addr
		proto  netmodel.Protocol
	}{
		{"icmp-responder", web, netmodel.ICMP},
		{"icmp-aliased", aliased, netmodel.ICMP},
		{"icmp-dark", dark, netmodel.ICMP},
		{"tcp443-responder", web, netmodel.TCP443},
		{"tcp80-aliased", aliased, netmodel.TCP80},
		{"tcp80-dark", dark, netmodel.TCP80},
		{"quic-responder", web, netmodel.UDP443},
		{"quic-dark", dark, netmodel.UDP443},
		{"dns-silent", dark, netmodel.UDP53},
	} {
		if got := probeAllocs(t, s, tc.target, tc.proto); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, got)
		}
	}
}

func TestProbeOneDNSAllocBounded(t *testing.T) {
	s := allocScanner(t)
	// A refusing DNS responder: the reply wire plus the response slice.
	if got := probeAllocs(t, s, ip6.MustParseAddr("2001:100::53"), netmodel.UDP53); got > 3 {
		t.Errorf("dns-responder: %v allocs/op, want <= 3", got)
	}
	// A GFW-injected ghost: two or three forged wires plus the slice.
	if got := probeAllocs(t, s, ip6.MustParseAddr("240e::1234"), netmodel.UDP53); got > 5 {
		t.Errorf("dns-injected: %v allocs/op, want <= 5", got)
	}
}

// TestProbeOneSealedEquivalence cross-checks the guard's world: sealed
// and unsealed scanners must produce identical results for every probe
// the guards time.
func TestProbeOneSealedEquivalence(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	plain := New(testNet(t), cfg)
	sealed := allocScanner(t)
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100::53"),
		ip6.MustParseAddr("2001:100:a::b"),
		ip6.MustParseAddr("2001:100::dead"),
		ip6.MustParseAddr("240e::1234"),
	}
	for _, target := range targets {
		for _, proto := range allProtos() {
			a := plain.ProbeOne(target, proto, 5)
			b := sealed.ProbeOne(target, proto, 5)
			if a.Success != b.Success || a.Kind != b.Kind || a.FP != b.FP ||
				a.Attempts != b.Attempts || len(a.DNS) != len(b.DNS) {
				t.Fatalf("%v/%v: sealed result diverges: %+v vs %+v", target, proto, a, b)
			}
			for i := range a.DNS {
				if string(a.DNS[i]) != string(b.DNS[i]) {
					t.Fatalf("%v/%v: DNS wire %d diverges", target, proto, i)
				}
			}
		}
	}
}
