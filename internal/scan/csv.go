package scan

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// The CSV schema mirrors what the IPv6 Hitlist service publishes from
// ZMapv6 runs, extended with the decoded DNS answer summary the GFW filter
// needs. Columns:
//
//	saddr, protocol, day, success, kind, num_responses, rcode, answers
//
// answers is a semicolon-separated list of "TYPE:value" pairs across all
// responses ("A:1.2.3.4;AAAA:2001::1"). Non-DNS rows leave rcode/answers
// empty.

// CSVHeader is the output header row.
var CSVHeader = []string{"saddr", "protocol", "day", "success", "kind", "num_responses", "rcode", "answers"}

// Record is one parsed CSV row.
type Record struct {
	Addr      ip6.Addr
	Proto     netmodel.Protocol
	Day       int
	Success   bool
	Kind      netmodel.RespKind
	Responses int
	RCode     string
	Answers   []AnswerSummary
}

// AnswerSummary is one decoded answer record.
type AnswerSummary struct {
	Type  dnswire.Type
	Value string
}

// SummarizeDNS decodes the raw DNS messages of a result into (rcode,
// answers). The first message's rcode is reported; answers accumulate
// across messages, which is how multi-injector responses become visible in
// a single row.
func SummarizeDNS(msgs [][]byte) (string, []AnswerSummary) {
	var scratch dnswire.Message
	return summarizeDNS(msgs, &scratch, nil)
}

// summarizeDNS is SummarizeDNS decoding into a caller-held scratch message
// and appending to a caller-held answer buffer — the reusable form the CSV
// writer runs per row.
func summarizeDNS(msgs [][]byte, scratch *dnswire.Message, out []AnswerSummary) (string, []AnswerSummary) {
	var rcode string
	for i, wire := range msgs {
		if err := dnswire.DecodeInto(wire, scratch); err != nil {
			continue
		}
		if i == 0 {
			rcode = scratch.Header.RCode.String()
		}
		for _, a := range scratch.Answers {
			var v string
			switch a.Type {
			case dnswire.TypeA:
				v = a.A.String()
			case dnswire.TypeAAAA:
				v = a.AAAA.String()
			case dnswire.TypeCNAME, dnswire.TypeNS, dnswire.TypePTR, dnswire.TypeMX:
				v = a.Target
			case dnswire.TypeTXT:
				v = a.Text
			}
			out = append(out, AnswerSummary{Type: a.Type, Value: v})
		}
	}
	return rcode, out
}

// Writer streams results as CSV.
type Writer struct {
	w  *csv.Writer
	bw *bufio.Writer

	// Per-row scratch, reused across Write calls (a Writer is not safe
	// for concurrent use anyway: rows interleave).
	scratch dnswire.Message
	answers []AnswerSummary
	parts   []string
	row     [8]string
}

// NewWriter creates a CSV writer and emits the header.
func NewWriter(out io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(out)
	w := csv.NewWriter(bw)
	if err := w.Write(CSVHeader); err != nil {
		return nil, fmt.Errorf("scan: writing CSV header: %w", err)
	}
	return &Writer{w: w, bw: bw}, nil
}

// NewBodyWriter creates a CSV writer that emits rows only, no header.
// Fleet consumers write one body per shard and concatenate them in
// canonical shard order behind a single header.
func NewBodyWriter(out io.Writer) *Writer {
	bw := bufio.NewWriter(out)
	return &Writer{w: csv.NewWriter(bw), bw: bw}
}

// Write emits one result row. The Writer's scratch buffers are reused
// across rows, so Write is not safe for concurrent use (it never was:
// rows would interleave).
func (w *Writer) Write(r Result) error {
	rcode, answers := "", w.answers[:0]
	if r.Proto == netmodel.UDP53 && len(r.DNS) > 0 {
		rcode, answers = summarizeDNS(r.DNS, &w.scratch, answers)
	}
	w.answers = answers[:0]
	parts := w.parts[:0]
	for _, a := range answers {
		parts = append(parts, a.Type.String()+":"+a.Value)
	}
	w.parts = parts[:0]
	w.row = [8]string{
		r.Target.String(),
		r.Proto.String(),
		strconv.Itoa(r.Day),
		strconv.FormatBool(r.Success),
		strconv.Itoa(int(r.Kind)),
		strconv.Itoa(len(r.DNS)),
		rcode,
		strings.Join(parts, ";"),
	}
	if err := w.w.Write(w.row[:]); err != nil {
		return fmt.Errorf("scan: writing CSV row: %w", err)
	}
	return nil
}

// WriteRecord re-emits a parsed record (the gfw-filter tool's path: parse,
// filter, re-serialize without re-probing anything).
func (w *Writer) WriteRecord(rec Record) error {
	parts := make([]string, 0, len(rec.Answers))
	for _, a := range rec.Answers {
		parts = append(parts, a.Type.String()+":"+a.Value)
	}
	row := []string{
		rec.Addr.String(),
		rec.Proto.String(),
		strconv.Itoa(rec.Day),
		strconv.FormatBool(rec.Success),
		strconv.Itoa(int(rec.Kind)),
		strconv.Itoa(rec.Responses),
		rec.RCode,
		strings.Join(parts, ";"),
	}
	if err := w.w.Write(row); err != nil {
		return fmt.Errorf("scan: writing CSV row: %w", err)
	}
	return nil
}

// Flush flushes buffered rows.
func (w *Writer) Flush() error {
	w.w.Flush()
	if err := w.w.Error(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadAll parses a result CSV produced by Writer.
func ReadAll(in io.Reader) ([]Record, error) {
	r := csv.NewReader(in)
	r.FieldsPerRecord = len(CSVHeader)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("scan: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("scan: empty CSV")
	}
	var out []Record
	for i, row := range rows {
		if i == 0 {
			if row[0] != "saddr" {
				return nil, fmt.Errorf("scan: unexpected header %v", row)
			}
			continue
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("scan: row %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Addr, err = ip6.ParseAddr(row[0]); err != nil {
		return rec, err
	}
	if rec.Proto, err = netmodel.ParseProtocol(row[1]); err != nil {
		return rec, err
	}
	if rec.Day, err = strconv.Atoi(row[2]); err != nil {
		return rec, fmt.Errorf("day: %w", err)
	}
	if rec.Success, err = strconv.ParseBool(row[3]); err != nil {
		return rec, fmt.Errorf("success: %w", err)
	}
	kind, err := strconv.Atoi(row[4])
	if err != nil {
		return rec, fmt.Errorf("kind: %w", err)
	}
	rec.Kind = netmodel.RespKind(kind)
	if rec.Responses, err = strconv.Atoi(row[5]); err != nil {
		return rec, fmt.Errorf("num_responses: %w", err)
	}
	rec.RCode = row[6]
	if row[7] != "" {
		for _, part := range strings.Split(row[7], ";") {
			tv := strings.SplitN(part, ":", 2)
			if len(tv) != 2 {
				return rec, fmt.Errorf("bad answer %q", part)
			}
			var typ dnswire.Type
			switch tv[0] {
			case "A":
				typ = dnswire.TypeA
			case "AAAA":
				typ = dnswire.TypeAAAA
			case "CNAME":
				typ = dnswire.TypeCNAME
			case "NS":
				typ = dnswire.TypeNS
			case "MX":
				typ = dnswire.TypeMX
			case "TXT":
				typ = dnswire.TypeTXT
			default:
				return rec, fmt.Errorf("bad answer type %q", tv[0])
			}
			rec.Answers = append(rec.Answers, AnswerSummary{Type: typ, Value: tv[1]})
		}
	}
	return rec, nil
}
