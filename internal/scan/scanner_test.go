package scan

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// testNet builds a miniature world: a reliable web host, a DNS host, an
// aliased /64, and a GFW-affected Chinese prefix.
func testNet(t testing.TB) *netmodel.Network {
	t.Helper()
	ases := []*netmodel.AS{
		{ASN: 100, Name: "Web", Country: "DE", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
		{ASN: 4134, Name: "CN", Country: "CN", Category: netmodel.CatISP,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("240e::/20")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(7, netmodel.NewASTable(ases))
	n.AddHost(&netmodel.Host{
		Addr: ip6.MustParseAddr("2001:100::80"), Protos: netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80, netmodel.TCP443, netmodel.UDP443),
		BornDay: 0, DeathDay: netmodel.Forever, UptimePermille: 1000, FP: netmodel.FPLinux, MTU: 1500,
	})
	n.AddHost(&netmodel.Host{
		Addr: ip6.MustParseAddr("2001:100::53"), Protos: netmodel.ProtoSetOf(netmodel.UDP53),
		BornDay: 0, DeathDay: netmodel.Forever, UptimePermille: 1000, DNS: netmodel.DNSRefusing, MTU: 1500,
	})
	n.AddAlias(&netmodel.AliasRule{
		Prefix: ip6.MustParsePrefix("2001:100:a::/64"), AS: ases[0],
		Protos:  netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
		BornDay: 0, DeathDay: netmodel.Forever, Backends: 1, FP: netmodel.FPBSD, MTU: 1500,
	})
	g := netmodel.NewGFWModel(7)
	g.AffectedASNs[4134] = true
	g.BlockedDomains["google.com"] = true
	g.Eras = []netmodel.InjectionEra{{StartDay: 0, EndDay: 10000, Mode: netmodel.InjectTeredo}}
	n.GFW = g
	return n
}

func allProtos() []netmodel.Protocol {
	return []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
}

func TestScanBasic(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	s := New(n, cfg)
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100::53"),
		ip6.MustParseAddr("2001:100::dead"),
	}
	results, stats, err := s.Scan(context.Background(), targets, allProtos(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(targets)*5 {
		t.Fatalf("results: %d", len(results))
	}
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[r.Target.String()+"/"+r.Proto.String()] = r
	}
	if !byKey["2001:100::80/ICMP"].Success || !byKey["2001:100::80/TCP/80"].Success {
		t.Error("web host not responsive")
	}
	if !byKey["2001:100::80/UDP/443"].Success {
		t.Error("QUIC not responsive")
	}
	if byKey["2001:100::80/UDP/53"].Success {
		t.Error("web host should not answer DNS")
	}
	if !byKey["2001:100::53/UDP/53"].Success {
		t.Error("DNS host not responsive")
	}
	if byKey["2001:100::dead/ICMP"].Success {
		t.Error("ghost responded")
	}
	if stats.ProbesSent == 0 || stats.Successes == 0 || stats.EstimatedSeconds <= 0 {
		t.Errorf("stats: %+v", stats)
	}
	// Result ordering matches input order.
	if results[0].Target != targets[0] || results[0].Proto != allProtos()[0] {
		t.Error("result order broken")
	}
}

func TestScanDeterminism(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(3)
	cfg.LossRate = 0.2
	cfg.Retries = 0
	s := New(n, cfg)
	var targets []ip6.Addr
	p := ip6.MustParsePrefix("2001:100:a::/64")
	for i := uint64(0); i < 200; i++ {
		targets = append(targets, p.NthAddr(i))
	}
	r1, _, _ := s.Scan(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 5)
	r2, _, _ := s.Scan(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 5)
	for i := range r1 {
		if r1[i].Success != r2[i].Success {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestLossAndRetries(t *testing.T) {
	n := testNet(t)
	p := ip6.MustParsePrefix("2001:100:a::/64") // fully responsive
	var targets []ip6.Addr
	for i := uint64(0); i < 2000; i++ {
		targets = append(targets, p.NthAddr(i))
	}

	count := func(loss float64, retries int) int {
		cfg := DefaultConfig(11)
		cfg.LossRate = loss
		cfg.Retries = retries
		s := New(n, cfg)
		sets, _, err := s.ResponsiveSet(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sets[netmodel.ICMP].Len()
	}

	noLoss := count(0, 0)
	if noLoss != len(targets) {
		t.Fatalf("lossless scan missed targets: %d/%d", noLoss, len(targets))
	}
	lossy := count(0.3, 0)
	if lossy >= noLoss || lossy < 1000 {
		t.Errorf("lossy scan: %d", lossy)
	}
	retried := count(0.3, 2)
	if retried <= lossy {
		t.Errorf("retries did not help: %d vs %d", retried, lossy)
	}
	// ~30% loss with 2 retries → miss rate ~2.7%.
	if float64(retried) < 0.93*float64(len(targets)) {
		t.Errorf("retried recovery too low: %d/%d", retried, len(targets))
	}
}

func TestScanContextCancel(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.Workers = 1
	s := New(n, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var targets []ip6.Addr
	p := ip6.MustParsePrefix("2001:100:a::/64")
	for i := uint64(0); i < 10000; i++ {
		targets = append(targets, p.NthAddr(i))
	}
	_, _, err := s.Scan(ctx, targets, allProtos(), 1)
	if err == nil {
		t.Error("cancelled scan returned nil error")
	}
}

func TestDNSProbeCarriesInjection(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	s := New(n, cfg)
	r := s.ProbeOne(ip6.MustParseAddr("240e::1"), netmodel.UDP53, 5)
	if !r.Success {
		t.Fatal("GFW-injected probe not successful (ZMap semantics)")
	}
	if len(r.DNS) < 2 {
		t.Errorf("injection responses: %d", len(r.DNS))
	}
	if r.InjectedTruth != len(r.DNS) {
		t.Errorf("injected truth: %d", r.InjectedTruth)
	}
	m, err := dnswire.Decode(r.DNS[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || !m.Answers[0].AAAA.IsTeredo() {
		t.Error("expected Teredo answer")
	}
}

func TestQNameFor(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	cfg.QNameFor = func(a ip6.Addr) string {
		return fmt.Sprintf("%s.hitlist-exp.example", a.FullHex()[:12])
	}
	s := New(n, cfg)
	// Unique qname is NOT blocked → no GFW injection.
	r := s.ProbeOne(ip6.MustParseAddr("240e::1"), netmodel.UDP53, 5)
	if r.Success {
		t.Error("unique-subdomain probe should not be injected")
	}
	// The refusing DNS host still answers.
	r = s.ProbeOne(ip6.MustParseAddr("2001:100::53"), netmodel.UDP53, 5)
	if !r.Success {
		t.Error("DNS host must answer unique subdomain (with REFUSED)")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	s := New(n, cfg)
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("240e::1"),
		ip6.MustParseAddr("2001:100::53"),
	}
	results, _, err := s.Scan(context.Background(), targets, allProtos(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(results) {
		t.Fatalf("rows: %d vs %d", len(recs), len(results))
	}
	// Find the injected row: Teredo answers must round-trip.
	found := false
	for _, rec := range recs {
		if rec.Addr == ip6.MustParseAddr("240e::1") && rec.Proto == netmodel.UDP53 {
			found = true
			if !rec.Success || rec.Responses < 2 {
				t.Errorf("injected row: %+v", rec)
			}
			if len(rec.Answers) < 2 || rec.Answers[0].Type != dnswire.TypeAAAA {
				t.Errorf("answers: %+v", rec.Answers)
			}
			a, err := ip6.ParseAddr(rec.Answers[0].Value)
			if err != nil || !a.IsTeredo() {
				t.Errorf("answer value: %q", rec.Answers[0].Value)
			}
		}
		if rec.Addr == ip6.MustParseAddr("2001:100::53") && rec.Proto == netmodel.UDP53 {
			if rec.RCode != "REFUSED" {
				t.Errorf("rcode: %q", rec.RCode)
			}
		}
	}
	if !found {
		t.Error("injected row missing")
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Error("empty CSV accepted")
	}
	bad := "saddr,protocol,day,success,kind,num_responses,rcode,answers\nnot-an-addr,ICMP,1,true,1,0,,\n"
	if _, err := ReadAll(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("bad address accepted")
	}
	bad2 := "x,y\n"
	if _, err := ReadAll(bytes.NewReader([]byte(bad2))); err == nil {
		t.Error("bad header accepted")
	}
}

func BenchmarkScanICMP(b *testing.B) {
	n := testNet(b)
	cfg := DefaultConfig(1)
	s := New(n, cfg)
	p := ip6.MustParsePrefix("2001:100:a::/64")
	targets := make([]ip6.Addr, 1000)
	for i := range targets {
		targets[i] = p.NthAddr(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Scan(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeOneDNS(b *testing.B) {
	n := testNet(b)
	s := New(n, DefaultConfig(1))
	target := ip6.MustParseAddr("240e::1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProbeOne(target, netmodel.UDP53, 1)
	}
}
