package scan

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// shardBatches streams targets through a sharded source and returns the
// delivered batch sequences keyed (shard, seq).
func shardBatches(t *testing.T, s *Scanner, targets []ip6.Addr) map[[2]int][]Result {
	t.Helper()
	var mu sync.Mutex
	out := make(map[[2]int][]Result)
	_, err := s.Stream(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}, 4, func(b *Batch) error {
		mu.Lock()
		out[[2]int{b.Shard, b.Seq}] = append([]Result(nil), b.Results...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDispatchOrderDoesNotChangeOutputs pins the adaptive-dispatch
// contract: any shard hand-out permutation yields bit-identical per-shard
// batch sequences.
func TestDispatchOrderDoesNotChangeOutputs(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(3)
	cfg.Workers = 4
	cfg.BatchSize = 16
	s := New(n, cfg)
	targets := append(streamTargets(400), ip6.MustParseAddr("2001:100::80"))

	base := shardBatches(t, s, targets)
	if len(base) == 0 {
		t.Fatal("no batches delivered")
	}

	reversed := make([]int, ip6.AddrShards)
	for i := range reversed {
		reversed[i] = ip6.AddrShards - 1 - i
	}
	interleaved := make([]int, 0, ip6.AddrShards)
	for i := 0; i < ip6.AddrShards/2; i++ {
		interleaved = append(interleaved, i, ip6.AddrShards-1-i)
	}
	for _, order := range [][]int{reversed, interleaved} {
		if err := s.SetDispatchOrder(order); err != nil {
			t.Fatal(err)
		}
		got := shardBatches(t, s, targets)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("dispatch order %v..: batch sequences diverge", order[:4])
		}
	}
	if err := s.SetDispatchOrder(nil); err != nil {
		t.Fatal(err)
	}
	if got := shardBatches(t, s, targets); !reflect.DeepEqual(base, got) {
		t.Fatal("resetting dispatch order diverges")
	}
}

func TestSetDispatchOrderValidation(t *testing.T) {
	s := New(testNet(t), DefaultConfig(1))
	if err := s.SetDispatchOrder([]int{0, 1, 2}); err == nil {
		t.Error("short order accepted")
	}
	dup := make([]int, ip6.AddrShards)
	for i := range dup {
		dup[i] = i
	}
	dup[5] = 4
	if err := s.SetDispatchOrder(dup); err == nil {
		t.Error("duplicate shard accepted")
	}
	oob := make([]int, ip6.AddrShards)
	for i := range oob {
		oob[i] = i
	}
	oob[0] = ip6.AddrShards
	if err := s.SetDispatchOrder(oob); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestDedupWithSpillSet pins DedupWith against Dedup: a disk-backed
// emitted-set produces the exact same survivor stream as the resident
// one.
func TestDedupWithSpillSet(t *testing.T) {
	mk := func() TargetSource {
		base := streamTargets(300)
		// Interleave duplicates and a skipped prefix window.
		var noisy []ip6.Addr
		for i, a := range base {
			noisy = append(noisy, a)
			if i%3 == 0 {
				noisy = append(noisy, base[(i+150)%len(base)])
			}
		}
		return SliceSource(noisy)
	}
	skip := func(a ip6.Addr) bool { return a.Lo()%5 == 0 }

	want, err := Collect(Dedup(mk(), skip))
	if err != nil {
		t.Fatal(err)
	}

	spill, err := ip6.NewSpillSet(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	got, err := Collect(DedupWith(mk(), skip, spill))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("spill-backed dedup diverges: %d vs %d survivors", len(got), len(want))
	}
	if spill.FrozenRuns() == 0 {
		t.Error("tiny budget never spilled — test exercised nothing")
	}
	if err := spill.Err(); err != nil {
		t.Fatal(err)
	}
	// Sanity: survivors are unique.
	sorted := append([]ip6.Addr(nil), got...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("duplicate survivor %v", sorted[i])
		}
	}
}
