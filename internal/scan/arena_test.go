package scan

import (
	"context"
	"reflect"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// TestScanDNSDeepCopy pins the batch-recycled DNS payloads: Scan's
// materialized results must stay byte-identical to an independent
// per-target ProbeOne reference even after further scans reuse the
// pooled arenas — i.e. the wrapper really deep-copied the wires out of
// the recycled buffers rather than aliasing them.
func TestScanDNSDeepCopy(t *testing.T) {
	n := testNet(t)
	// GFW-affected targets: every UDP/53 probe draws 2-3 injected
	// responses, so DNS payloads appear throughout the result set.
	p := ip6.MustParsePrefix("240e::/64")
	targets := make([]ip6.Addr, 64)
	for i := range targets {
		targets[i] = p.NthAddr(uint64(i))
	}
	targets = append(targets, ip6.MustParseAddr("2001:100::53"))

	cfg := DefaultConfig(7)
	cfg.BatchSize = 3 // force many flushes → heavy arena recycling
	cfg.Workers = 4
	s := New(n, cfg)
	protos := []netmodel.Protocol{netmodel.UDP53, netmodel.ICMP}

	first, _, err := s.Scan(context.Background(), targets, protos, 9)
	if err != nil {
		t.Fatal(err)
	}
	// An independent reference: ProbeOne allocates DNS on the heap (nil
	// arena), untouched by any recycling.
	ref := New(n, cfg)
	wantDNS := 0
	for i, tgt := range targets {
		for j, proto := range protos {
			want := ref.ProbeOne(tgt, proto, 9)
			if got := first[i*len(protos)+j]; !reflect.DeepEqual(got, want) {
				t.Fatalf("target %v proto %v: scanned %+v, reference %+v", tgt, proto, got, want)
			}
			wantDNS += len(want.DNS)
		}
	}
	if wantDNS == 0 {
		t.Fatal("world produced no DNS payloads; the deep-copy path was not exercised")
	}

	// Snapshot the first scan's DNS bytes, run more scans on the same
	// scanner (same arena pool), and verify nothing was overwritten.
	type snap struct{ idx, msg int }
	saved := make(map[snap][]byte)
	for i, r := range first {
		for m, wire := range r.DNS {
			saved[snap{i, m}] = append([]byte(nil), wire...)
		}
	}
	for day := 10; day < 13; day++ {
		if _, _, err := s.Scan(context.Background(), targets, protos, day); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range saved {
		if got := first[k.idx].DNS[k.msg]; string(got) != string(want) {
			t.Fatalf("result %d message %d mutated by later scans", k.idx, k.msg)
		}
	}
}
