package scan

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/netmodel"
)

// slowDisk simulates a saturated log disk: every underlying write call
// stalls before completing. The CSV writer's bufio layer batches rows,
// so the stall hits roughly once per few KB — the shape of a real slow
// consumer.
type slowDisk struct{ delay time.Duration }

func (d slowDisk) Write(p []byte) (int, error) {
	time.Sleep(d.delay)
	return len(p), nil
}

// BenchmarkCSVSlowSink is the ROADMAP's slow-disk CSV scenario: stream a
// scan into the CSV writer over a stalling disk, with the sink inline on
// the probe workers versus decoupled behind the bounded delivery queue
// (Config.SinkQueueDepth). When the disk is the strict bottleneck both
// variants converge to disk speed — the backpressure invariant: probe
// workers throttle to the consumer without deadlock or unbounded
// buffering (the queued variant buffers at most depth batches, visible
// as its slightly higher B/op). The queued variant's win is structural:
// the sink mutex is uncontended because one goroutine delivers, and
// probing overlaps the stalls instead of workers queuing on the lock.
func BenchmarkCSVSlowSink(b *testing.B) {
	n := testNet(b)
	targets := streamTargets(2000)
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}
	for _, bench := range []struct {
		name  string
		depth int
	}{
		{"inline", 0},
		{"queued8", 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := DefaultConfig(5)
			cfg.Workers = 4
			cfg.BatchSize = 64
			cfg.SinkQueueDepth = bench.depth
			s := New(n, cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := NewWriter(io.Writer(slowDisk{delay: 200 * time.Microsecond}))
				if err != nil {
					b.Fatal(err)
				}
				// The CSV writer is not concurrency-safe: the inline
				// variant serializes sink calls from all probe workers
				// through this mutex (stalling them on the disk), the
				// queued variant leaves it uncontended on the single
				// delivery goroutine.
				var mu sync.Mutex
				_, err = s.Stream(context.Background(), targets, protos, 3, func(batch *Batch) error {
					mu.Lock()
					defer mu.Unlock()
					for _, r := range batch.Results {
						if err := out.Write(r); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := out.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
