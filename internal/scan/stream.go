package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// The streaming engine. Targets are partitioned into ip6.AddrShards
// deterministic shards by address hash; each shard is probed sequentially
// by one worker at a time, and results are delivered to the consumer in
// fixed-size batches as they complete. Because shard membership depends
// only on the address and per-probe outcomes depend only on
// (address, protocol, day, seed), the batch sequence of a shard is
// bit-identical regardless of worker count, and any consumer that
// accumulates per shard and merges in canonical shard order is
// deterministic by construction.

// DefaultBatchSize is the streamed batch size when Config.BatchSize is 0.
const DefaultBatchSize = 256

// Batch is one unit of streamed scan results: a contiguous slice of the
// (target, protocol) probe sequence of a single shard.
type Batch struct {
	// Shard is the ip6.ShardOf shard every target in this batch hashes to.
	Shard int
	// Seq is the batch's sequence number within its shard, from 0.
	Seq int
	// Results holds the probe outcomes, in (target, protocol) order along
	// the shard's deterministic target sequence.
	Results []Result
	// Stats covers this batch only (per-batch throughput accounting).
	Stats Stats

	// start is the batch's offset in the shard's flat probe sequence;
	// orig maps shard-local target positions back to input positions.
	start   int
	orig    []int
	nprotos int
}

// OrigIndex returns the position of Results[i] in the canonical
// (target, protocol) cross-product ordering of the originating Stream
// call — the index Scan uses to place results.
func (b *Batch) OrigIndex(i int) int {
	pos := b.start + i
	return b.orig[pos/b.nprotos]*b.nprotos + pos%b.nprotos
}

// Sink consumes streamed batches. It may be invoked concurrently from
// multiple worker goroutines, but calls for the same shard are sequential
// and in Seq order; per-shard state therefore needs no locking. The batch
// and its Results must not be retained after return. A non-nil error
// aborts the stream.
type Sink func(*Batch) error

// shardPlan is the deterministic probe plan of one shard.
type shardPlan struct {
	targets []ip6.Addr
	orig    []int
}

// buildPlans partitions targets into per-shard plans, preserving input
// order within each shard. Two passes: count, then fill two exactly-sized
// backing arrays shared by all shards (append-growth on 64 slices would
// roughly double the allocation).
func buildPlans(targets []ip6.Addr) []shardPlan {
	var counts [ip6.AddrShards]int
	for _, t := range targets {
		counts[ip6.ShardOf(t)]++
	}
	tbuf := make([]ip6.Addr, 0, len(targets))
	obuf := make([]int, 0, len(targets))
	plans := make([]shardPlan, ip6.AddrShards)
	off := 0
	for sh := range plans {
		end := off + counts[sh]
		plans[sh].targets = tbuf[off:off:end]
		plans[sh].orig = obuf[off:off:end]
		off = end
	}
	for i, t := range targets {
		sh := ip6.ShardOf(t)
		plans[sh].targets = append(plans[sh].targets, t)
		plans[sh].orig = append(plans[sh].orig, i)
	}
	return plans
}

// Stream probes every (target, protocol) pair for the given day, routing
// work through the sharded worker pool and delivering results to sink in
// batches of Config.BatchSize. It returns aggregate statistics. The
// context cancels the stream between batches; batches already delivered
// stand, and ctx.Err() is returned.
func (s *Scanner) Stream(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	if len(targets) == 0 || len(protos) == 0 {
		var total streamTotals
		return total.stats(s.cfg.RatePPS), nil
	}
	return s.streamPlans(ctx, buildPlans(targets), protos, day, sink)
}

// StreamSharded probes targets the caller has already partitioned into
// canonical shards: shards[i] holds shard i's targets (every address must
// satisfy ShardOf == i) and len(shards) must be ip6.AddrShards. It is the
// zero-materialization entry point for sharded producers — per-shard
// target slices feed the engine directly, no concatenated global slice is
// ever built. Batches from StreamSharded carry no original-position
// mapping, so Batch.OrigIndex must not be called on them; accumulate
// per shard instead.
func (s *Scanner) StreamSharded(ctx context.Context, shards [][]ip6.Addr, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	if len(shards) != ip6.AddrShards {
		return Stats{}, fmt.Errorf("scan: StreamSharded wants %d shards, got %d", ip6.AddrShards, len(shards))
	}
	plans := make([]shardPlan, ip6.AddrShards)
	n := 0
	for i := range shards {
		plans[i].targets = shards[i]
		n += len(shards[i])
	}
	if n == 0 || len(protos) == 0 {
		var total streamTotals
		return total.stats(s.cfg.RatePPS), nil
	}
	return s.streamPlans(ctx, plans, protos, day, sink)
}

// streamPlans runs the worker pool over prepared per-shard plans.
func (s *Scanner) streamPlans(ctx context.Context, plans []shardPlan, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	var total streamTotals
	nonEmpty := 0
	for i := range plans {
		if len(plans[i].targets) > 0 {
			nonEmpty++
		}
	}
	workers := s.cfg.Workers
	if workers > nonEmpty {
		workers = nonEmpty
	}

	var (
		wg       sync.WaitGroup
		shardCh  = make(chan int)
		stop     = make(chan struct{})
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	// With a bounded sink queue configured, batches are handed to one
	// delivery goroutine instead of being processed inline on the probe
	// workers: a slow sink then applies backpressure (producers block once
	// the queue fills) rather than stalling every worker mid-batch.
	var queue *sinkQueue
	if s.cfg.SinkQueueDepth > 0 {
		queue = newSinkQueue(s, sink, s.cfg.SinkQueueDepth, fail)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range shardCh {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.streamShard(ctx, sh, &plans[sh], protos, day, sink, queue, &total, stop); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

feed:
	for sh := range plans {
		if len(plans[sh].targets) == 0 {
			continue
		}
		// Check for abort before the blocking dispatch: when stop and an
		// idle worker are both ready, select would otherwise pick at
		// random and could hand out whole extra shards after a failure.
		select {
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		case <-stop:
			break feed
		default:
		}
		select {
		case shardCh <- sh:
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		case <-stop:
			break feed
		}
	}
	close(shardCh)
	wg.Wait()
	if queue != nil {
		queue.close() // drains and waits; a sink error surfaces via fail
	}

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return total.stats(s.cfg.RatePPS), err
}

// sinkQueue is the bounded delivery queue between probe workers and the
// sink (Config.SinkQueueDepth). A single delivery goroutine preserves the
// Sink contract: batches arrive FIFO, and a shard's batches are enqueued
// in Seq order by the one worker holding that shard, so same-shard calls
// stay sequential and ordered. On a sink error the queue keeps draining
// (returning buffers to the pool) so producers can never block forever on
// a full channel.
type sinkQueue struct {
	scanner *Scanner
	ch      chan *Batch
	done    chan struct{}
}

func newSinkQueue(s *Scanner, sink Sink, depth int, fail func(error)) *sinkQueue {
	q := &sinkQueue{scanner: s, ch: make(chan *Batch, depth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		failed := false
		for b := range q.ch {
			if !failed {
				if err := sink(b); err != nil {
					fail(err)
					failed = true
				}
			}
			s.putBuf(b.Results)
		}
	}()
	return q
}

// enqueue hands a filled batch to the delivery goroutine, blocking while
// the queue is full — that block is the backpressure. The batch's buffer
// is owned by the queue from here on.
func (q *sinkQueue) enqueue(b *Batch) { q.ch <- b }

// close signals end of stream and waits for the last delivery.
func (q *sinkQueue) close() {
	close(q.ch)
	<-q.done
}

// getBuf returns a pooled result buffer with at least the given
// capacity, empty.
func (s *Scanner) getBuf(need int) []Result {
	if buf, ok := s.bufPool.Get().([]Result); ok && cap(buf) >= need {
		return buf[:0]
	}
	return make([]Result, 0, need)
}

// putBuf clears a buffer and parks it in the pool. Clearing before
// pooling keeps parked buffers from pinning DNS payloads from the last
// batches until their slots are overwritten.
func (s *Scanner) putBuf(buf []Result) {
	buf = buf[:cap(buf)]
	clear(buf)
	s.bufPool.Put(buf[:0])
}

// streamShard probes one shard's (target, protocol) sequence, flushing a
// batch every BatchSize results — inline to the sink, or through the
// bounded delivery queue when one is configured.
func (s *Scanner) streamShard(ctx context.Context, shard int, plan *shardPlan, protos []netmodel.Protocol, day int, sink Sink, queue *sinkQueue, total *streamTotals, stop <-chan struct{}) error {
	batchSize := s.cfg.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	b := &Batch{Shard: shard, orig: plan.orig, nprotos: len(protos)}
	// Batch buffers are pooled across shards and Stream calls (sinks must
	// not retain them); a fresh one is sized to the smaller of the batch
	// size and the shard's whole probe sequence, so tiny shards never pay
	// for a full batch.
	need := len(plan.targets) * len(protos)
	if need > batchSize {
		need = batchSize
	}
	b.Results = s.getBuf(need)
	defer func() { s.putBuf(b.Results) }()
	pos := 0

	flush := func() error {
		if len(b.Results) == 0 {
			return nil
		}
		b.Stats.EstimatedSeconds = float64(b.Stats.ProbesSent) / float64(s.cfg.RatePPS)
		b.Stats.Batches = 1
		total.add(&b.Stats)
		if queue != nil {
			// Ownership of the filled batch moves to the delivery
			// goroutine (which pools its buffer after the sink call);
			// probing continues immediately into a fresh buffer.
			full := b
			b = &Batch{Shard: shard, Seq: full.Seq + 1, start: pos, orig: plan.orig, nprotos: len(protos)}
			b.Results = s.getBuf(need)
			queue.enqueue(full)
			return nil
		}
		if err := sink(b); err != nil {
			return err
		}
		b.Seq++
		b.start = pos
		b.Results = b.Results[:0]
		b.Stats = Stats{}
		return nil
	}

	for _, t := range plan.targets {
		for _, p := range protos {
			r := s.ProbeOne(t, p, day)
			b.Stats.ProbesSent += uint64(r.Attempts)
			if r.Kind != netmodel.RespNone {
				b.Stats.Responses++
			}
			if r.Success {
				b.Stats.Successes++
			}
			b.Results = append(b.Results, r)
			pos++
			if len(b.Results) == batchSize {
				if err := flush(); err != nil {
					return err
				}
				// Cancellation is checked at batch granularity: cheap
				// enough to stay responsive, coarse enough to keep the
				// hot loop branch-free.
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-stop:
					return nil
				default:
				}
			}
		}
	}
	return flush()
}

// streamTotals aggregates batch stats with atomics (batches finish on
// many workers at once).
type streamTotals struct {
	probes, responses, successes, batches atomic.Uint64
}

func (t *streamTotals) add(b *Stats) {
	t.probes.Add(b.ProbesSent)
	t.responses.Add(b.Responses)
	t.successes.Add(b.Successes)
	t.batches.Add(1)
}

func (t *streamTotals) stats(ratePPS int) Stats {
	st := Stats{
		ProbesSent: t.probes.Load(),
		Responses:  t.responses.Load(),
		Successes:  t.successes.Load(),
		Batches:    t.batches.Load(),
	}
	st.EstimatedSeconds = float64(st.ProbesSent) / float64(ratePPS)
	return st
}
