package scan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// The streaming engine. Targets are partitioned into ip6.AddrShards
// deterministic shards by address hash; each shard is probed sequentially
// by one worker at a time, and results are delivered to the consumer in
// fixed-size batches as they complete. Because shard membership depends
// only on the address and per-probe outcomes depend only on
// (address, protocol, day, seed), the batch sequence of a shard is
// bit-identical regardless of worker count, and any consumer that
// accumulates per shard and merges in canonical shard order is
// deterministic by construction.
//
// Every entry point is a veneer over StreamFrom, which pulls targets
// from a TargetSource (see source.go). Sources that are already
// partitioned (ShardedSource) feed probe workers directly with no
// routing pass; everything else flows through a router that shards
// pulled chunks into bounded per-shard queues — either way, no full
// target set is ever materialized inside the engine.

// DefaultBatchSize is the streamed batch size when Config.BatchSize is 0.
const DefaultBatchSize = 256

// DefaultSourceChunk is the per-pull target count when Config.SourceChunk
// is 0.
const DefaultSourceChunk = 1024

// Batch is one unit of streamed scan results: a contiguous slice of the
// (target, protocol) probe sequence of a single shard.
type Batch struct {
	// Shard is the ip6.ShardOf shard every target in this batch hashes to.
	Shard int
	// Seq is the batch's sequence number within its shard, from 0.
	Seq int
	// Results holds the probe outcomes, in (target, protocol) order along
	// the shard's deterministic target sequence.
	Results []Result
	// Stats covers this batch only (per-batch throughput accounting).
	Stats Stats

	// start is the batch's offset in the shard's flat probe sequence;
	// orig maps shard-local target positions back to input positions.
	start   int
	orig    []int
	nprotos int

	// arena owns the DNS wire buffers the batch's Results reference
	// (UDP/53 streams only). It is recycled together with the Results
	// buffer, which is why sinks must deep-copy DNS payloads they want
	// to retain past the sink call.
	arena *netmodel.WireArena
}

// OrigIndex returns the position of Results[i] in the canonical
// (target, protocol) cross-product ordering of the originating Stream
// call — the index Scan uses to place results. Batches from sources
// without position mappings (StreamSharded, StreamFrom over non-slice
// sources) carry none; OrigIndex must not be called on them.
func (b *Batch) OrigIndex(i int) int {
	pos := b.start + i
	return b.orig[pos/b.nprotos]*b.nprotos + pos%b.nprotos
}

// Sink consumes streamed batches. It may be invoked concurrently from
// multiple worker goroutines, but calls for the same shard are sequential
// and in Seq order; per-shard state therefore needs no locking. The batch
// and its Results must not be retained after return. A non-nil error
// aborts the stream.
type Sink func(*Batch) error

// shardPlan is the deterministic probe plan of one shard.
type shardPlan struct {
	targets []ip6.Addr
	orig    []int
}

// buildPlans partitions targets into per-shard plans, preserving input
// order within each shard. Two passes: count, then fill two exactly-sized
// backing arrays shared by all shards (append-growth on 64 slices would
// roughly double the allocation).
func buildPlans(targets []ip6.Addr) []shardPlan {
	var counts [ip6.AddrShards]int
	for _, t := range targets {
		counts[ip6.ShardOf(t)]++
	}
	tbuf := make([]ip6.Addr, 0, len(targets))
	obuf := make([]int, 0, len(targets))
	plans := make([]shardPlan, ip6.AddrShards)
	off := 0
	for sh := range plans {
		end := off + counts[sh]
		plans[sh].targets = tbuf[off:off:end]
		plans[sh].orig = obuf[off:off:end]
		off = end
	}
	for i, t := range targets {
		sh := ip6.ShardOf(t)
		plans[sh].targets = append(plans[sh].targets, t)
		plans[sh].orig = append(plans[sh].orig, i)
	}
	return plans
}

// Stream probes every (target, protocol) pair for the given day, routing
// work through the sharded worker pool and delivering results to sink in
// batches of Config.BatchSize. It returns aggregate statistics. The
// context cancels the stream between batches; batches already delivered
// stand, and ctx.Err() is returned. Stream is a thin wrapper over
// StreamFrom with a slice-backed source (which keeps the plan-based fast
// path and the Batch.OrigIndex position mapping).
func (s *Scanner) Stream(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	if len(targets) == 0 || len(protos) == 0 {
		var total streamTotals
		return total.stats(s.cfg.RatePPS), nil
	}
	return s.StreamFrom(ctx, SliceSource(targets), protos, day, sink)
}

// StreamSharded probes targets the caller has already partitioned into
// canonical shards: shards[i] holds shard i's targets (every address must
// satisfy ShardOf == i) and len(shards) must be ip6.AddrShards. It is the
// zero-materialization entry point for sharded slice producers — a thin
// wrapper over StreamFrom with a ShardSlices source, so per-shard target
// slices feed the engine directly and no concatenated global slice is
// ever built. Batches from StreamSharded carry no original-position
// mapping, so Batch.OrigIndex must not be called on them; accumulate
// per shard instead.
func (s *Scanner) StreamSharded(ctx context.Context, shards [][]ip6.Addr, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	if len(shards) != ip6.AddrShards {
		return Stats{}, fmt.Errorf("scan: StreamSharded wants %d shards, got %d", ip6.AddrShards, len(shards))
	}
	return s.StreamFrom(ctx, ShardSlices(shards), protos, day, sink)
}

// StreamFrom pulls targets from src, shards them, probes every
// (target, protocol) pair for the given day on the worker pool, and
// delivers results to sink in batches of Config.BatchSize — without ever
// holding the full target set. Sources implementing ShardedSource are
// pulled per shard directly by the probe workers; any other source is
// pulled in Config.SourceChunk-sized chunks and routed into bounded
// per-shard queues, with the puller blocking (backpressure) once too many
// routed targets are waiting to be probed. Outputs are bit-identical for
// any worker count, batch size or chunk size; the per-shard batch
// sequence equals that of a Stream call over the materialized source. If
// src implements io.Closer it is closed when the stream ends, on every
// path.
func (s *Scanner) StreamFrom(ctx context.Context, src TargetSource, protos []netmodel.Protocol, day int, sink Sink) (Stats, error) {
	var total streamTotals
	if src == nil {
		return total.stats(s.cfg.RatePPS), nil
	}
	defer closeSource(src)
	if len(protos) == 0 {
		return total.stats(s.cfg.RatePPS), nil
	}

	run := &streamRun{
		s:      s,
		ctx:    ctx,
		protos: protos,
		day:    day,
		sink:   sink,
		total:  &total,
		stop:   make(chan struct{}),
	}
	run.batchSize = s.cfg.BatchSize
	if run.batchSize <= 0 {
		run.batchSize = DefaultBatchSize
	}
	run.chunk = s.cfg.SourceChunk
	if run.chunk <= 0 {
		run.chunk = DefaultSourceChunk
	}
	if s.cfg.SinkQueueDepth > 0 {
		run.queue = newSinkQueue(s, sink, s.cfg.SinkQueueDepth, run.fail)
	}

	if sharded, ok := src.(ShardedSource); ok {
		run.runSharded(sharded)
	} else {
		run.runRouted(src)
	}

	if run.queue != nil {
		run.queue.close() // drains and waits; a sink error surfaces via fail
	}
	return total.stats(s.cfg.RatePPS), run.err()
}

// errStreamStopped is the internal signal that another worker already
// failed the stream: unwind without flushing, without overwriting the
// original error.
var errStreamStopped = errors.New("scan: stream stopped")

// streamRun is the shared state of one StreamFrom call.
type streamRun struct {
	s      *Scanner
	ctx    context.Context
	protos []netmodel.Protocol
	day    int
	sink   Sink
	queue  *sinkQueue
	total  *streamTotals

	batchSize int
	chunk     int

	stop     chan struct{}
	stopOnce sync.Once
	onStop   func() // set before workers start; wakes path-specific waiters
	errMu    sync.Mutex
	firstErr error
}

func (r *streamRun) fail(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
	r.stopOnce.Do(func() {
		close(r.stop)
		if r.onStop != nil {
			r.onStop()
		}
	})
}

func (r *streamRun) err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

// shardProbe is the persistent probe/flush state of one shard within a
// stream. Segments of the shard's target sequence arrive via probe() —
// possibly many, pulled or routed incrementally — and batches flush at
// exact BatchSize boundaries regardless of how the sequence was
// segmented, so the delivered batch sequence is identical to probing the
// whole shard at once. Only the goroutine currently owning the shard
// touches it.
type shardProbe struct {
	run      *streamRun
	shard    int
	b        *Batch
	pos      int
	need     int
	released bool
}

// newShardProbe starts a shard's probe state. orig is the optional
// original-position mapping (slice-backed streams); size is the shard's
// total target count when known, -1 otherwise — it only tunes the first
// buffer's capacity.
func (r *streamRun) newShardProbe(shard int, orig []int, size int) *shardProbe {
	need := r.batchSize
	if size >= 0 {
		if n := size * len(r.protos); n < need {
			need = n
		}
	}
	b := &Batch{Shard: shard, orig: orig, nprotos: len(r.protos)}
	b.Results = r.s.getBuf(need)
	b.arena = r.s.getArena(r.protos)
	return &shardProbe{run: r, shard: shard, b: b, need: need}
}

// flush delivers the current batch — inline to the sink, or through the
// bounded delivery queue when one is configured.
func (p *shardProbe) flush() error {
	if len(p.b.Results) == 0 {
		return nil
	}
	r := p.run
	p.b.Stats.EstimatedSeconds = float64(p.b.Stats.ProbesSent) / float64(r.s.cfg.RatePPS)
	p.b.Stats.Batches = 1
	r.total.add(p.shard, &p.b.Stats)
	if r.queue != nil {
		// Ownership of the filled batch moves to the delivery goroutine
		// (which pools its buffer after the sink call); probing continues
		// immediately into a fresh buffer.
		full := p.b
		p.b = &Batch{Shard: p.shard, Seq: full.Seq + 1, start: p.pos, orig: full.orig, nprotos: full.nprotos}
		p.b.Results = r.s.getBuf(p.need)
		p.b.arena = r.s.getArena(r.protos)
		r.queue.enqueue(full)
		return nil
	}
	if err := r.sink(p.b); err != nil {
		return err
	}
	p.b.Seq++
	p.b.start = p.pos
	p.b.Results = p.b.Results[:0]
	// The sink has consumed (or deep-copied) every result, so the DNS
	// buffers its rows referenced are free to reuse for the next batch.
	p.b.arena.Reset()
	p.b.Stats = Stats{}
	return nil
}

// probe runs one segment of the shard's target sequence, flushing full
// batches as they complete. It returns ctx.Err() on cancellation,
// errStreamStopped when another worker failed the stream, or a sink
// error.
func (p *shardProbe) probe(targets []ip6.Addr) error {
	r := p.run
	t0 := time.Now()
	defer func() { r.total.addNanos(p.shard, time.Since(t0)) }()
	for _, t := range targets {
		for _, proto := range r.protos {
			res := r.s.probeOne(t, proto, r.day, p.b.arena)
			p.b.Stats.ProbesSent += uint64(res.Attempts)
			if res.Kind != netmodel.RespNone {
				p.b.Stats.Responses++
			}
			if res.Success {
				p.b.Stats.Successes++
			}
			p.b.Results = append(p.b.Results, res)
			p.pos++
			if len(p.b.Results) == r.batchSize {
				if err := p.flush(); err != nil {
					return err
				}
				// Cancellation is checked at batch granularity: cheap
				// enough to stay responsive, coarse enough to keep the
				// hot loop branch-free.
				select {
				case <-r.ctx.Done():
					return r.ctx.Err()
				case <-r.stop:
					return errStreamStopped
				default:
				}
			}
		}
	}
	return nil
}

// finish flushes the trailing partial batch and releases the buffer.
func (p *shardProbe) finish() error {
	err := p.flush()
	p.release()
	return err
}

// release returns the probe's buffer and arena to their pools;
// idempotent.
func (p *shardProbe) release() {
	if !p.released {
		p.released = true
		p.run.s.putBuf(p.b.Results)
		p.run.s.putArena(p.b.arena)
		p.b.Results = nil
		p.b.arena = nil
	}
}

// runSharded streams a pre-partitioned source: the worker pool hands out
// whole shards, and each worker pulls its shard's sub-source directly
// into probing — no routing, no cross-shard buffering.
func (r *streamRun) runSharded(src ShardedSource) {
	var feeds [ip6.AddrShards]TargetSource
	nonEmpty := 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if f := src.ShardSource(sh); f != nil {
			feeds[sh] = f
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return
	}
	origs, _ := src.(origSource)
	sizes, _ := src.(ShardSizer)
	workers := r.s.cfg.Workers
	if workers > nonEmpty {
		workers = nonEmpty
	}

	var wg sync.WaitGroup
	shardCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []ip6.Addr // lazy pull buffer for non-span sources
			for sh := range shardCh {
				select {
				case <-r.stop:
					return
				default:
				}
				var orig []int
				if origs != nil {
					orig = origs.shardOrig(sh)
				}
				size := -1
				if sizes != nil {
					size = sizes.ShardLen(sh)
				}
				if err := r.pullShard(sh, feeds[sh], orig, size, &buf); err != nil {
					r.fail(err)
					return
				}
			}
		}()
	}

	// Hand-out order: canonical unless the scanner carries an adaptive
	// dispatch order (slowest-first scheduling). Order only affects which
	// worker starts which shard when — every shard's own batch sequence,
	// and therefore every output, is identical.
	order := r.s.dispatchOrder()

feed:
	for i := 0; i < ip6.AddrShards; i++ {
		sh := i
		if order != nil {
			sh = order[i]
		}
		if feeds[sh] == nil {
			continue
		}
		// Check for abort before the blocking dispatch: when stop and an
		// idle worker are both ready, select would otherwise pick at
		// random and could hand out whole extra shards after a failure.
		select {
		case <-r.ctx.Done():
			r.fail(r.ctx.Err())
			break feed
		case <-r.stop:
			break feed
		default:
		}
		select {
		case shardCh <- sh:
		case <-r.ctx.Done():
			r.fail(r.ctx.Err())
			break feed
		case <-r.stop:
			break feed
		}
	}
	close(shardCh)
	wg.Wait()
}

// pullShard probes one shard's whole target sequence by pulling its
// source to exhaustion. A nil return covers both success and an orderly
// stop (the stream's first error is already recorded elsewhere).
func (r *streamRun) pullShard(sh int, src TargetSource, orig []int, size int, buf *[]ip6.Addr) error {
	sp := r.newShardProbe(sh, orig, size)
	spanner, _ := src.(SpanSource)
	for {
		var seg []ip6.Addr
		var err error
		if spanner != nil {
			seg, err = spanner.Span(r.chunk)
		} else {
			if *buf == nil {
				*buf = make([]ip6.Addr, r.chunk)
			}
			var n int
			n, err = src.Next(*buf)
			seg = (*buf)[:n]
		}
		if len(seg) > 0 {
			if perr := sp.probe(seg); perr != nil {
				sp.release()
				if perr == errStreamStopped {
					return nil
				}
				return perr
			}
		} else if err == nil {
			sp.release()
			return fmt.Errorf("scan: shard %d source made no progress", sh)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			sp.release()
			return err
		}
	}
	return sp.finish()
}

// routedShard is one shard's routing queue in the routed path.
type routedShard struct {
	pending   []ip6.Addr // routed, not yet probed (FIFO)
	spare     []ip6.Addr // recycled backing array for pending
	scheduled bool       // a token for this shard is in workCh / owned by a worker
	done      bool       // the source is exhausted; no more input will arrive
	finished  bool       // final flush has run
	sp        *shardProbe
}

// runRouted streams an unpartitioned source: the calling goroutine pulls
// chunks and routes each address to its canonical shard's queue, probe
// workers drain the queues (one worker per shard at a time, FIFO), and a
// window cap on routed-but-unprobed targets applies backpressure to the
// puller. Per-shard probe state persists across segments, so batch
// boundaries — and therefore every output — are exactly those of a
// single-pass stream.
func (r *streamRun) runRouted(src TargetSource) {
	workers := r.s.cfg.Workers
	if workers > ip6.AddrShards {
		workers = ip6.AddrShards
	}
	// The window bounds engine-held targets: large enough to keep every
	// worker busy between pulls, small enough that a huge source never
	// accumulates in memory.
	window := r.chunk * (workers + 2)

	shards := make([]routedShard, ip6.AddrShards)
	var (
		mu          sync.Mutex
		cond        = sync.NewCond(&mu)
		outstanding int
		stopped     bool
	)
	r.onStop = func() {
		mu.Lock()
		stopped = true
		cond.Broadcast()
		mu.Unlock()
	}

	// Buffered to AddrShards: the scheduled flag guarantees at most one
	// token per shard, so sends never block.
	workCh := make(chan int, ip6.AddrShards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range workCh {
				rs := &shards[sh]
				for {
					mu.Lock()
					seg := rs.pending
					rs.pending = nil
					if len(seg) == 0 {
						final := rs.done && rs.sp != nil && !rs.finished
						if final {
							rs.finished = true
						} else {
							rs.scheduled = false
						}
						mu.Unlock()
						if final {
							if err := rs.sp.finish(); err != nil {
								r.fail(err)
								return
							}
						}
						break
					}
					if rs.sp == nil {
						rs.sp = r.newShardProbe(sh, nil, -1)
					}
					sp := rs.sp
					mu.Unlock()

					err := sp.probe(seg)

					mu.Lock()
					if rs.spare == nil {
						rs.spare = seg[:0]
					}
					outstanding -= len(seg)
					cond.Broadcast()
					mu.Unlock()
					if err != nil {
						sp.release()
						if err != errStreamStopped {
							r.fail(err)
						}
						return
					}
				}
			}
		}()
	}

	hint := -1
	if h, ok := src.(ShardHinter); ok {
		hint = h.ShardHint()
	}
	buf := make([]ip6.Addr, r.chunk)
pull:
	for {
		select {
		case <-r.ctx.Done():
			r.fail(r.ctx.Err())
			break pull
		case <-r.stop:
			break pull
		default:
		}
		n, err := src.Next(buf)
		if n > 0 {
			mu.Lock()
			for outstanding+n > window && !stopped {
				cond.Wait()
			}
			if stopped {
				mu.Unlock()
				break pull
			}
			outstanding += n
			for _, a := range buf[:n] {
				sh := hint
				if sh < 0 {
					sh = ip6.ShardOf(a)
				}
				rs := &shards[sh]
				if rs.pending == nil && rs.spare != nil {
					rs.pending = rs.spare
					rs.spare = nil
				}
				rs.pending = append(rs.pending, a)
				if !rs.scheduled {
					rs.scheduled = true
					workCh <- sh
				}
			}
			mu.Unlock()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			r.fail(err)
			break
		}
		if n == 0 {
			r.fail(fmt.Errorf("scan: source made no progress"))
			break
		}
	}

	// End of input: schedule the final flush of every shard with a live
	// partial batch or unprobed remainder — unless the stream already
	// failed, in which case workers are unwinding and partial batches are
	// dropped (the Sink contract: delivered batches stand, nothing else).
	aborted := false
	select {
	case <-r.stop:
		aborted = true
	default:
	}
	mu.Lock()
	for sh := range shards {
		rs := &shards[sh]
		rs.done = true
		if !aborted && (len(rs.pending) > 0 || rs.sp != nil) && !rs.scheduled {
			rs.scheduled = true
			workCh <- sh
		}
	}
	mu.Unlock()
	close(workCh)
	wg.Wait()

	// Release any probe buffers stranded by an abort.
	for sh := range shards {
		if sp := shards[sh].sp; sp != nil {
			sp.release()
		}
	}
}

// sinkQueue is the bounded delivery queue between probe workers and the
// sink (Config.SinkQueueDepth). A single delivery goroutine preserves the
// Sink contract: batches arrive FIFO, and a shard's batches are enqueued
// in Seq order by the one worker holding that shard, so same-shard calls
// stay sequential and ordered. On a sink error the queue keeps draining
// (returning buffers to the pool) so producers can never block forever on
// a full channel.
type sinkQueue struct {
	scanner *Scanner
	ch      chan *Batch
	done    chan struct{}
}

func newSinkQueue(s *Scanner, sink Sink, depth int, fail func(error)) *sinkQueue {
	q := &sinkQueue{scanner: s, ch: make(chan *Batch, depth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		failed := false
		for b := range q.ch {
			if !failed {
				if err := sink(b); err != nil {
					fail(err)
					failed = true
				}
			}
			s.putBuf(b.Results)
			s.putArena(b.arena)
		}
	}()
	return q
}

// enqueue hands a filled batch to the delivery goroutine, blocking while
// the queue is full — that block is the backpressure. The batch's buffer
// is owned by the queue from here on.
func (q *sinkQueue) enqueue(b *Batch) { q.ch <- b }

// close signals end of stream and waits for the last delivery.
func (q *sinkQueue) close() {
	close(q.ch)
	<-q.done
}

// getBuf returns a pooled result buffer with at least the given
// capacity, empty.
func (s *Scanner) getBuf(need int) []Result {
	if buf, ok := s.bufPool.Get().([]Result); ok && cap(buf) >= need {
		return buf[:0]
	}
	return make([]Result, 0, need)
}

// putBuf clears a buffer and parks it in the pool. Clearing before
// pooling keeps parked buffers from pinning DNS payloads from the last
// batches until their slots are overwritten.
func (s *Scanner) putBuf(buf []Result) {
	buf = buf[:cap(buf)]
	clear(buf)
	s.bufPool.Put(buf[:0])
}

// getArena returns a pooled DNS wire arena for a stream probing UDP/53,
// nil otherwise — non-DNS streams never touch the arena machinery.
func (s *Scanner) getArena(protos []netmodel.Protocol) *netmodel.WireArena {
	dns := false
	for _, p := range protos {
		if p == netmodel.UDP53 {
			dns = true
			break
		}
	}
	if !dns {
		return nil
	}
	if a, ok := s.arenaPool.Get().(*netmodel.WireArena); ok {
		return a
	}
	return new(netmodel.WireArena)
}

// putArena resets an arena — its batch's results are fully consumed —
// and parks it; nil-safe.
func (s *Scanner) putArena(a *netmodel.WireArena) {
	if a != nil {
		a.Reset()
		s.arenaPool.Put(a)
	}
}

// ShardStats is one canonical shard's slice of a stream's throughput
// accounting — the raw signal for scheduler-style adaptive rate control.
type ShardStats struct {
	ProbesSent uint64
	Responses  uint64
	Successes  uint64
	Batches    uint64
	// Nanos is the cumulative wall-clock time probe workers spent inside
	// this shard. Unlike every other stream output it is nondeterministic
	// (it measures the machine, not the simulation), so consumers pinning
	// deterministic outputs must ignore it.
	Nanos int64
}

// streamTotals aggregates batch stats with atomics (batches finish on
// many workers at once), overall and per shard.
type streamTotals struct {
	probes, responses, successes, batches atomic.Uint64
	shards                                [ip6.AddrShards]shardTotals
}

type shardTotals struct {
	probes, responses, successes, batches atomic.Uint64
	nanos                                 atomic.Int64
}

func (t *streamTotals) add(shard int, b *Stats) {
	t.probes.Add(b.ProbesSent)
	t.responses.Add(b.Responses)
	t.successes.Add(b.Successes)
	t.batches.Add(1)
	sh := &t.shards[shard]
	sh.probes.Add(b.ProbesSent)
	sh.responses.Add(b.Responses)
	sh.successes.Add(b.Successes)
	sh.batches.Add(1)
}

func (t *streamTotals) addNanos(shard int, d time.Duration) {
	t.shards[shard].nanos.Add(int64(d))
}

func (t *streamTotals) stats(ratePPS int) Stats {
	st := Stats{
		ProbesSent: t.probes.Load(),
		Responses:  t.responses.Load(),
		Successes:  t.successes.Load(),
		Batches:    t.batches.Load(),
	}
	st.EstimatedSeconds = float64(st.ProbesSent) / float64(ratePPS)
	st.PerShard = make([]ShardStats, ip6.AddrShards)
	for i := range t.shards {
		sh := &t.shards[i]
		st.PerShard[i] = ShardStats{
			ProbesSent: sh.probes.Load(),
			Responses:  sh.responses.Load(),
			Successes:  sh.successes.Load(),
			Batches:    sh.batches.Load(),
			Nanos:      sh.nanos.Load(),
		}
	}
	return st
}
