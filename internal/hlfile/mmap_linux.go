//go:build linux

package hlfile

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only; nil on any failure (callers fall
// back to ReadAt).
func mmapFile(f *os.File, size int64) []byte {
	if size <= 0 || size != int64(int(size)) {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return data
}

func munmapFile(data []byte) { _ = syscall.Munmap(data) }
