//go:build !linux

package hlfile

import "os"

// Without a ported mmap the reader serves every request through ReadAt;
// the format and the source behave identically, just with copies.
func mmapFile(f *os.File, size int64) []byte { return nil }

func munmapFile(data []byte) {}
