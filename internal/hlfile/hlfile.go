// Package hlfile defines the .hl6 binary hitlist format — the on-disk
// interchange for hitlist-scale target sets — plus a bounded-memory
// writer and an mmap/ReadAt-backed reader that plugs straight into the
// scan engine as a sharded TargetSource.
//
// Layout (all integers little-endian):
//
//	offset 0   magic "HL6F"
//	       4   uint16 version (currently 1)
//	       6   uint16 reserved (zero)
//	       8   uint32 shard count (must equal ip6.AddrShards)
//	      12   uint32 reserved (zero)
//	      16   [shards]uint64 per-shard address counts
//	      16+8·shards   body: raw 16-byte addresses, network byte order,
//	                    shard 0's run, then shard 1's, … — each run sorted
//	                    ascending and duplicate-free
//
// Shard membership is ip6.ShardOf, the same canonical partitioning every
// sharded structure in the repository uses, so a reader hands each scan
// worker its shard's run directly off disk: scanning a .hl6 file
// materializes nothing beyond per-pull buffers no matter how many
// millions of addresses it holds. Byte offsets of every shard follow from
// the header's counts, which is the whole per-shard index.
package hlfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hitlist6/internal/ip6"
)

// magic identifies .hl6 files.
var magic = [4]byte{'H', 'L', '6', 'F'}

// Version is the current format version.
const Version = 1

// headerSize is the fixed prologue plus the per-shard count table.
const headerSize = 16 + 8*ip6.AddrShards

// ErrFormat tags every malformed-file error Open returns (wrapped with
// detail); errors.Is(err, ErrFormat) distinguishes corruption from I/O.
var ErrFormat = errors.New("hlfile: malformed file")

// Writer builds a .hl6 file from addresses in any order, with bounded
// resident memory: incoming addresses buffer per shard, and when the
// resident total reaches the budget every shard buffer freezes to a
// sorted run in a scratch ip6.RunFile. Finish merges each shard's runs —
// deduplicating on the fly — straight into the output body and then
// backfills the header, so peak memory is the budget plus per-run merge
// chunks regardless of input size.
type Writer struct {
	path   string
	rf     *ip6.RunFile
	budget int

	bufs     [ip6.AddrShards][]ip6.Addr
	runs     [ip6.AddrShards][]*ip6.Run
	resident int
	finished bool
}

// DefaultWriterBudget is the resident address budget of NewWriter:
// 1 Mi addresses ≈ 16 MiB.
const DefaultWriterBudget = 1 << 20

// NewWriter creates a writer targeting path with the default budget.
func NewWriter(path string) (*Writer, error) {
	return NewWriterBudget(path, DefaultWriterBudget)
}

// NewWriterBudget creates a writer whose resident buffer is capped at
// budget addresses (minimum 1). The scratch run file lives next to the
// output so spills stay on the same filesystem.
func NewWriterBudget(path string, budget int) (*Writer, error) {
	if budget < 1 {
		budget = 1
	}
	rf, err := ip6.OpenRunFile(filepath.Dir(path), ".hl6-scratch-*")
	if err != nil {
		return nil, err
	}
	return &Writer{path: path, rf: rf, budget: budget}, nil
}

// Add routes one address to its shard buffer, spilling when the resident
// budget fills. Duplicates are allowed; Finish drops them.
func (w *Writer) Add(a ip6.Addr) error {
	sh := ip6.ShardOf(a)
	w.bufs[sh] = append(w.bufs[sh], a)
	w.resident++
	if w.resident >= w.budget {
		return w.spill()
	}
	return nil
}

// AddSlice adds every address.
func (w *Writer) AddSlice(addrs []ip6.Addr) error {
	for _, a := range addrs {
		if err := w.Add(a); err != nil {
			return err
		}
	}
	return nil
}

// spill freezes every non-empty shard buffer as a sorted run.
func (w *Writer) spill() error {
	for sh := range w.bufs {
		buf := w.bufs[sh]
		if len(buf) == 0 {
			continue
		}
		ip6.SortAddrs(buf)
		run, err := w.rf.WriteRun(buf)
		if err != nil {
			return err
		}
		w.runs[sh] = append(w.runs[sh], &run)
		w.bufs[sh] = buf[:0]
	}
	w.resident = 0
	return nil
}

// Abort discards the writer without producing the output file, removing
// the scratch run file — the cleanup path for conversions that fail
// mid-input. No-op after Finish or a prior Abort.
func (w *Writer) Abort() {
	if w.finished {
		return
	}
	w.finished = true
	w.rf.Close()
}

// Finish merges the spilled runs and writes the final file. The writer
// cannot be reused afterwards; the scratch file is always removed, even
// on error.
func (w *Writer) Finish() (err error) {
	if w.finished {
		return fmt.Errorf("hlfile: writer already finished")
	}
	w.finished = true
	defer func() {
		if cerr := w.rf.Close(); err == nil {
			err = cerr
		}
	}()
	if err := w.spill(); err != nil {
		return err
	}

	out, err := os.Create(w.path)
	if err != nil {
		return fmt.Errorf("hlfile: creating %s: %w", w.path, err)
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()

	// Placeholder header first; the real counts land after the body is
	// streamed out and known.
	var counts [ip6.AddrShards]uint64
	if err := writeHeader(out, &counts); err != nil {
		return err
	}
	bw := newBodyWriter(out, headerSize)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		n := uint64(0)
		if err := ip6.MergeRuns(w.rf, w.runs[sh], func(a ip6.Addr) error {
			n++
			return bw.append(a)
		}); err != nil {
			return err
		}
		counts[sh] = n
	}
	if err := bw.flush(); err != nil {
		return err
	}
	// Backfill the real counts (writeHeader writes at offset 0).
	return writeHeader(out, &counts)
}

func encodeHeader(counts *[ip6.AddrShards]uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[8:], ip6.AddrShards)
	for i, c := range counts {
		binary.LittleEndian.PutUint64(hdr[16+8*i:], c)
	}
	return hdr
}

func writeHeader(f *os.File, counts *[ip6.AddrShards]uint64) error {
	if _, err := f.WriteAt(encodeHeader(counts), 0); err != nil {
		return fmt.Errorf("hlfile: writing header: %w", err)
	}
	return nil
}

// bodyWriter batches sequential body appends into large writes.
type bodyWriter struct {
	f   *os.File
	off int64
	buf []byte
}

func newBodyWriter(f *os.File, off int64) *bodyWriter {
	return &bodyWriter{f: f, off: off, buf: make([]byte, 0, 64*1024)}
}

func (b *bodyWriter) append(a ip6.Addr) error {
	b.buf = append(b.buf, a[:]...)
	if len(b.buf) >= 64*1024 {
		return b.flush()
	}
	return nil
}

func (b *bodyWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	if _, err := b.f.WriteAt(b.buf, b.off); err != nil {
		return fmt.Errorf("hlfile: writing body: %w", err)
	}
	b.off += int64(len(b.buf))
	b.buf = b.buf[:0]
	return nil
}

// WriteSharded streams a pre-sharded, pre-sorted address collection as a
// .hl6 image to w. Unlike Writer — which sorts arbitrary input and
// backfills the header with WriteAt — the per-shard counts are declared
// up front, so the whole file flows sequentially through any io.Writer
// (checkpointing wraps one that tracks size and CRC). walk is called for
// each shard in canonical order and must emit exactly counts[sh]
// addresses, sorted ascending and duplicate-free; a count mismatch
// aborts loudly rather than producing a file whose header lies.
func WriteSharded(w io.Writer, counts *[ip6.AddrShards]uint64, walk func(sh int, emit func(ip6.Addr) error) error) error {
	if _, err := w.Write(encodeHeader(counts)); err != nil {
		return fmt.Errorf("hlfile: writing header: %w", err)
	}
	buf := make([]byte, 0, 64*1024)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		n := uint64(0)
		if err := walk(sh, func(a ip6.Addr) error {
			n++
			buf = append(buf, a[:]...)
			if len(buf) >= 64*1024 {
				if _, err := w.Write(buf); err != nil {
					return fmt.Errorf("hlfile: writing body: %w", err)
				}
				buf = buf[:0]
			}
			return nil
		}); err != nil {
			return err
		}
		if n != counts[sh] {
			return fmt.Errorf("hlfile: shard %d emitted %d addresses, declared %d", sh, n, counts[sh])
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("hlfile: writing body: %w", err)
		}
	}
	return nil
}

// Write converts a materialized address slice to a .hl6 file — the
// convenience path for tests and small conversions.
func Write(path string, addrs []ip6.Addr) error {
	w, err := NewWriter(path)
	if err != nil {
		return err
	}
	if err := w.AddSlice(addrs); err != nil {
		w.Abort()
		return err
	}
	return w.Finish()
}
