package hlfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"hitlist6/internal/ip6"
	"hitlist6/internal/scan"
)

// Reader is an open .hl6 file. The body is memory-mapped when the
// platform supports it (reads then touch pages on demand and the OS page
// cache is the only buffer) and served through ReadAt otherwise; either
// way no address is resident until a consumer pulls it. A Reader is
// safe for concurrent shard cursors — the scan engine pulls each shard
// from its own worker.
type Reader struct {
	f      *os.File
	data   []byte // non-nil iff mmap succeeded
	counts [ip6.AddrShards]int
	starts [ip6.AddrShards + 1]int64 // cumulative address index of each shard
	total  int64
}

// Open validates the header against the file size and maps the file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f *os.File) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, smaller than the %d-byte header", ErrFormat, st.Size(), headerSize)
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("hlfile: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrFormat, v, Version)
	}
	if s := binary.LittleEndian.Uint32(hdr[8:]); s != ip6.AddrShards {
		return nil, fmt.Errorf("%w: %d shards, want %d", ErrFormat, s, ip6.AddrShards)
	}
	r := &Reader{f: f}
	for i := 0; i < ip6.AddrShards; i++ {
		c := binary.LittleEndian.Uint64(hdr[16+8*i:])
		if c > uint64(st.Size())/ip6.AddrBytes {
			return nil, fmt.Errorf("%w: shard %d count %d exceeds file size", ErrFormat, i, c)
		}
		r.counts[i] = int(c)
		r.starts[i+1] = r.starts[i] + int64(c)
	}
	r.total = r.starts[ip6.AddrShards]
	if want := headerSize + r.total*ip6.AddrBytes; st.Size() != want {
		return nil, fmt.Errorf("%w: %d bytes, header implies %d (truncated or trailing garbage)", ErrFormat, st.Size(), want)
	}
	// Best-effort mmap; ReadAt covers platforms (and failures) without it.
	if st.Size() > 0 {
		r.data = mmapFile(f, st.Size())
	}
	return r, nil
}

// Close unmaps and closes the file.
func (r *Reader) Close() error {
	if r.data != nil {
		munmapFile(r.data)
		r.data = nil
	}
	return r.f.Close()
}

// Len returns the total address count.
func (r *Reader) Len() int { return int(r.total) }

// ShardLen returns shard sh's address count.
func (r *Reader) ShardLen(sh int) int { return r.counts[sh] }

// Mapped reports whether the body is memory-mapped (as opposed to served
// through ReadAt).
func (r *Reader) Mapped() bool { return r.data != nil }

// shardSpan returns shard sh's addresses as a zero-copy view into the
// mapped body, or nil without mmap. ip6.Addr is [16]byte (alignment 1),
// so reinterpreting the mapped bytes is layout-safe; the view is
// read-only and valid until Close.
func (r *Reader) shardSpan(sh int) []ip6.Addr {
	if r.data == nil || r.counts[sh] == 0 {
		return nil
	}
	off := headerSize + r.starts[sh]*ip6.AddrBytes
	return unsafe.Slice((*ip6.Addr)(unsafe.Pointer(&r.data[off])), r.counts[sh])
}

// readAddrs fills buf with addresses [idx, idx+len(buf)) of the body,
// reading straight into the caller's buffer: ip6.Addr is [16]byte
// (alignment 1, no padding), so its backing bytes are a valid ReadAt
// destination — the same layout fact shardSpan relies on.
func (r *Reader) readAddrs(idx int64, buf []ip6.Addr) error {
	if len(buf) == 0 {
		return nil
	}
	raw := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(buf)*ip6.AddrBytes)
	if _, err := r.f.ReadAt(raw, headerSize+idx*ip6.AddrBytes); err != nil {
		return fmt.Errorf("hlfile: reading body: %w", err)
	}
	return nil
}

// SortedSet returns the file's addresses as a frozen point-lookup index
// (the body is already sorted and sharded exactly like
// ip6.SortedShardSet wants). With mmap every per-shard slice is a
// zero-copy view into the mapped body — the index of a multi-million
// address hitlist costs no resident memory beyond the page cache, but
// it is only valid until Close. Without mmap each shard is read into
// memory once.
func (r *Reader) SortedSet() (*ip6.SortedShardSet, error) {
	var shards [ip6.AddrShards][]ip6.Addr
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if r.counts[sh] == 0 {
			continue
		}
		if span := r.shardSpan(sh); span != nil {
			shards[sh] = span
			continue
		}
		buf := make([]ip6.Addr, r.counts[sh])
		if err := r.readAddrs(r.starts[sh], buf); err != nil {
			return nil, err
		}
		shards[sh] = buf
	}
	return ip6.SortedFromShards(shards), nil
}

// ShardCursor returns a pull cursor over shard sh's addresses in file
// order (sorted ascending, duplicate-free by format contract): each call
// yields the next address, with ok=false at end of shard. Reads go
// through bounded chunks, so a cursor holds O(chunk) memory regardless
// of shard size — the checkpoint-restore path feeds these straight into
// resident sets or SpillSet.ImportShardSorted.
func (r *Reader) ShardCursor(sh int) func() (ip6.Addr, bool, error) {
	idx := r.starts[sh]
	left := r.counts[sh]
	buf := make([]ip6.Addr, 0, 4096)
	pos := 0
	return func() (ip6.Addr, bool, error) {
		if pos == len(buf) {
			if left == 0 {
				return ip6.Addr{}, false, nil
			}
			n := cap(buf)
			if n > left {
				n = left
			}
			buf = buf[:n]
			if err := r.readAddrs(idx, buf); err != nil {
				return ip6.Addr{}, false, err
			}
			idx += int64(n)
			left -= n
			pos = 0
		}
		a := buf[pos]
		pos++
		return a, true, nil
	}
}

// Source returns a fresh TargetSource over the whole file. The returned
// source implements scan.ShardedSource and scan.ShardSizer, so
// Scanner.StreamFrom hands each probe worker its shard's run directly;
// with mmap the per-shard cursors also serve zero-copy spans. Closing the
// source does not close the reader — use OpenSource for a self-owning
// stream.
func (r *Reader) Source() scan.TargetSource { return &fileSource{r: r} }

// OpenSource opens path and returns a source that owns the reader: the
// scan engine's close-on-stream-end then releases the file too.
func OpenSource(path string) (scan.TargetSource, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	return &fileSource{r: r, owned: true}, nil
}

// fileSource walks the file in canonical shard order for generic Next
// pulls and hands out per-shard cursors for the engine's sharded path.
type fileSource struct {
	r     *Reader
	owned bool
	idx   int64 // next flat address index for Next pulls
}

var (
	_ scan.ShardedSource = (*fileSource)(nil)
	_ scan.ShardSizer    = (*fileSource)(nil)
)

func (s *fileSource) Next(buf []ip6.Addr) (int, error) {
	left := s.r.total - s.idx
	if left == 0 {
		return 0, io.EOF
	}
	n := int64(len(buf))
	if n > left {
		n = left
	}
	if s.r.data != nil {
		off := headerSize + s.idx*ip6.AddrBytes
		raw := s.r.data[off : off+n*ip6.AddrBytes]
		for i := int64(0); i < n; i++ {
			copy(buf[i][:], raw[i*ip6.AddrBytes:])
		}
	} else if err := s.r.readAddrs(s.idx, buf[:n]); err != nil {
		return 0, err
	}
	s.idx += n
	if s.idx == s.r.total {
		return int(n), io.EOF
	}
	return int(n), nil
}

func (s *fileSource) ShardSource(sh int) scan.TargetSource {
	if s.r.counts[sh] == 0 {
		return nil
	}
	if span := s.r.shardSpan(sh); span != nil {
		return &spanCursor{rest: span}
	}
	return &readCursor{r: s.r, idx: s.r.starts[sh], left: s.r.counts[sh]}
}

func (s *fileSource) ShardLen(sh int) int { return s.r.counts[sh] }

func (s *fileSource) Close() error {
	if s.owned {
		return s.r.Close()
	}
	return nil
}

// spanCursor serves a mapped shard run: Span returns sub-slices of the
// mapping itself, so the engine probes straight out of the page cache.
type spanCursor struct{ rest []ip6.Addr }

func (c *spanCursor) Next(buf []ip6.Addr) (int, error) {
	n := copy(buf, c.rest)
	c.rest = c.rest[n:]
	if len(c.rest) == 0 {
		return n, io.EOF
	}
	return n, nil
}

func (c *spanCursor) Span(max int) ([]ip6.Addr, error) {
	if max > len(c.rest) {
		max = len(c.rest)
	}
	seg := c.rest[:max]
	c.rest = c.rest[max:]
	if len(c.rest) == 0 {
		return seg, io.EOF
	}
	return seg, nil
}

// readCursor serves a shard run through ReadAt on platforms without mmap.
type readCursor struct {
	r    *Reader
	idx  int64
	left int
}

func (c *readCursor) Next(buf []ip6.Addr) (int, error) {
	if c.left == 0 {
		return 0, io.EOF
	}
	n := len(buf)
	if n > c.left {
		n = c.left
	}
	if err := c.r.readAddrs(c.idx, buf[:n]); err != nil {
		return 0, err
	}
	c.idx += int64(n)
	c.left -= n
	if c.left == 0 {
		return n, io.EOF
	}
	return n, nil
}
