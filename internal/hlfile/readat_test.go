package hlfile

// Internal test forcing the non-mmap read path: on platforms where mmap
// succeeds the ReadAt cursors never run in the black-box tests, so drop
// the mapping by hand and pin both paths against each other.

import (
	"path/filepath"
	"reflect"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
)

func TestReadAtPathMatchesMmap(t *testing.T) {
	r := rng.NewStream(9, "readat-test")
	addrs := make([]ip6.Addr, 3000)
	for i := range addrs {
		addrs[i] = ip6.AddrFromUint64s(r.Uint64(), r.Uint64())
	}
	path := filepath.Join(t.TempDir(), "t.hl6")
	if err := Write(path, addrs); err != nil {
		t.Fatal(err)
	}

	mapped, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	plain, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.data != nil {
		munmapFile(plain.data)
		plain.data = nil
	}
	if mapped.Mapped() == plain.Mapped() {
		t.Skip("mmap unavailable; both readers already use ReadAt")
	}

	want, err := scan.Collect(mapped.Source())
	if err != nil {
		t.Fatal(err)
	}
	got, err := scan.Collect(plain.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ReadAt path diverges from mmap path on generic pulls")
	}

	// Per-shard cursors too (spanCursor vs readCursor), with small pull
	// buffers so readAddrs runs many partial chunks.
	for sh := 0; sh < ip6.AddrShards; sh++ {
		ms := mapped.Source().(scan.ShardedSource).ShardSource(sh)
		ps := plain.Source().(scan.ShardedSource).ShardSource(sh)
		if (ms == nil) != (ps == nil) {
			t.Fatalf("shard %d: cursor presence diverges", sh)
		}
		if ms == nil {
			continue
		}
		var wantRun, gotRun []ip6.Addr
		buf := make([]ip6.Addr, 7)
		for {
			n, err := ms.Next(buf)
			wantRun = append(wantRun, buf[:n]...)
			if err != nil {
				break
			}
		}
		for {
			n, err := ps.Next(buf)
			gotRun = append(gotRun, buf[:n]...)
			if err != nil {
				break
			}
		}
		if !reflect.DeepEqual(wantRun, gotRun) {
			t.Fatalf("shard %d: ReadAt cursor diverges from mmap cursor", sh)
		}
	}
}
