package hlfile_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
)

// testAddrs draws n deterministic addresses inside 2001:100::/32 (with
// duplicates sprinkled in) so scans against the test network get some
// responders.
func testAddrs(seed uint64, n int) []ip6.Addr {
	r := rng.NewStream(seed, "hlfile-test")
	out := make([]ip6.Addr, 0, n)
	for i := 0; i < n; i++ {
		a := ip6.AddrFromUint64s(0x2001_0100_0000_0000|r.Uint64()&0xffff, r.Uint64()&0xff)
		out = append(out, a)
		if i%11 == 0 {
			out = append(out, a) // duplicate: the writer must drop it
		}
	}
	return out
}

// sortedUnique is the expected file content for a given input.
func sortedUnique(addrs []ip6.Addr) []ip6.Addr {
	set := ip6.SetOf(addrs...)
	return set.Sorted()
}

func writeFile(t *testing.T, addrs []ip6.Addr, budget int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "targets.hl6")
	w, err := hlfile.NewWriterBudget(path, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriterReaderRoundTrip(t *testing.T) {
	for _, budget := range []int{1, 17, 1 << 20} {
		addrs := testAddrs(1, 2000)
		want := sortedUnique(addrs)
		path := writeFile(t, addrs, budget)

		r, err := hlfile.Open(path)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if r.Len() != len(want) {
			t.Fatalf("budget %d: Len %d, want %d", budget, r.Len(), len(want))
		}
		got, err := scan.Collect(r.Source())
		if err != nil {
			t.Fatal(err)
		}
		// The file stores shard runs in canonical shard order; membership
		// and per-shard grouping are the contract.
		if len(got) != len(want) {
			t.Fatalf("budget %d: collected %d addrs, want %d", budget, len(got), len(want))
		}
		gotSet := ip6.SetOf(got...)
		for _, a := range want {
			if !gotSet.Has(a) {
				t.Fatalf("budget %d: %v missing from file", budget, a)
			}
		}
		// Each shard's run is sorted, deduped, correctly partitioned, and
		// sized exactly as ShardLen reports.
		src := r.Source().(scan.ShardedSource)
		sum := 0
		for sh := 0; sh < ip6.AddrShards; sh++ {
			n := r.ShardLen(sh)
			sum += n
			cur := src.ShardSource(sh)
			if cur == nil {
				if n != 0 {
					t.Fatalf("shard %d: nil source but ShardLen %d", sh, n)
				}
				continue
			}
			run, err := scan.Collect(cur)
			if err != nil {
				t.Fatal(err)
			}
			if len(run) != n {
				t.Fatalf("shard %d: %d addrs, ShardLen says %d", sh, len(run), n)
			}
			for i, a := range run {
				if ip6.ShardOf(a) != sh {
					t.Fatalf("shard %d holds foreign addr %v", sh, a)
				}
				if i > 0 && !run[i-1].Less(a) {
					t.Fatalf("shard %d unsorted or duplicated at %d", sh, i)
				}
			}
		}
		if sum != len(want) {
			t.Fatalf("shard lengths sum to %d, want %d", sum, len(want))
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// The writer's scratch must be gone.
		entries, err := os.ReadDir(filepath.Dir(path))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("leftover files next to output: %v", entries)
		}
	}
}

func TestEmptyFileAndEmptyShards(t *testing.T) {
	// A file with zero addresses is valid and yields an immediately
	// exhausted source.
	path := writeFile(t, nil, 4)
	r, err := hlfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("empty file Len %d", r.Len())
	}
	got, err := scan.Collect(r.Source())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty file collected %d addrs, err %v", len(got), err)
	}
	src := r.Source().(scan.ShardedSource)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if src.ShardSource(sh) != nil {
			t.Fatalf("empty file shard %d not nil", sh)
		}
	}

	// One address: exactly one populated shard.
	one := ip6.MustParseAddr("2001:db8::1")
	r2, err := hlfile.Open(writeFile(t, []ip6.Addr{one, one}, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 1 || r2.ShardLen(ip6.ShardOf(one)) != 1 {
		t.Fatalf("single-addr file Len %d, home shard %d", r2.Len(), r2.ShardLen(ip6.ShardOf(one)))
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	path := writeFile(t, testAddrs(2, 100), 1<<20)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]byte{
		"truncated-header": good[:20],
		"truncated-body":   good[:len(good)-7],
		"trailing-bytes":   append(append([]byte(nil), good...), 0xff),
		"bad-magic":        append([]byte("NOPE"), good[4:]...),
		"bad-version":      append(append([]byte(nil), good[:4]...), append([]byte{0x7f, 0x7f}, good[6:]...)...),
		"empty":            {},
	}
	for name, data := range cases {
		_, err := hlfile.Open(write(name, data))
		if err == nil {
			t.Errorf("%s: Open accepted a corrupt file", name)
			continue
		}
		if !errors.Is(err, hlfile.ErrFormat) {
			t.Errorf("%s: error %v is not ErrFormat", name, err)
		}
	}
	// Missing files surface as plain I/O errors, not format errors.
	if _, err := hlfile.Open(filepath.Join(dir, "nope.hl6")); err == nil || errors.Is(err, hlfile.ErrFormat) {
		t.Errorf("missing file: err %v", err)
	}
}

// testNet is the miniature scan world (a responsive host plus an aliased
// /64) the equivalence test probes.
func testNet() *netmodel.Network {
	ases := []*netmodel.AS{
		{ASN: 100, Name: "Web", Country: "DE", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(7, netmodel.NewASTable(ases))
	n.AddHost(&netmodel.Host{
		Addr: ip6.MustParseAddr("2001:100::80"), Protos: netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
		BornDay: 0, DeathDay: netmodel.Forever, UptimePermille: 1000, FP: netmodel.FPLinux, MTU: 1500,
	})
	n.AddAlias(&netmodel.AliasRule{
		Prefix: ip6.MustParsePrefix("2001:100:a::/64"), AS: ases[0],
		Protos:  netmodel.ProtoSetOf(netmodel.ICMP),
		BornDay: 0, DeathDay: netmodel.Forever, Backends: 1, FP: netmodel.FPBSD, MTU: 1500,
	})
	return n
}

type taggedBatch struct {
	shard, seq int
	results    []scan.Result
}

func collectBatches(t *testing.T, s *scan.Scanner, src scan.TargetSource) []taggedBatch {
	t.Helper()
	var mu sync.Mutex
	var out []taggedBatch
	_, err := s.StreamFrom(context.Background(), src, []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}, 5, func(b *scan.Batch) error {
		mu.Lock()
		out = append(out, taggedBatch{b.Shard, b.Seq, append([]scan.Result(nil), b.Results...)})
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shard != out[j].shard {
			return out[i].shard < out[j].shard
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// TestHitlistSourceMatchesSlice pins the file-backed source against
// scan.SliceSource over the same (sorted, deduped) addresses: identical
// per-shard batch sequences, so scanning from disk is bit-equivalent to
// scanning from memory.
func TestHitlistSourceMatchesSlice(t *testing.T) {
	addrs := testAddrs(3, 1500)
	// A few guaranteed responders in the mix.
	addrs = append(addrs,
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100:a::1"),
		ip6.MustParseAddr("2001:100:a::2"),
	)
	want := sortedUnique(addrs)
	path := writeFile(t, addrs, 64) // tiny budget: many spilled runs

	n := testNet()
	cfg := scan.DefaultConfig(1)
	cfg.Workers = 4
	cfg.BatchSize = 32
	s := scan.New(n, cfg)

	// The slice reference must present targets in the same per-shard
	// order the file stores: sorted within each shard. A globally sorted
	// slice does exactly that (shard partition preserves relative order).
	ref := collectBatches(t, s, scan.SliceSource(want))

	r, err := hlfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := collectBatches(t, s, r.Source())

	if len(got) != len(ref) {
		t.Fatalf("batch count %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].shard != ref[i].shard || got[i].seq != ref[i].seq {
			t.Fatalf("batch %d is shard %d seq %d, want shard %d seq %d",
				i, got[i].shard, got[i].seq, ref[i].shard, ref[i].seq)
		}
		if !reflect.DeepEqual(got[i].results, ref[i].results) {
			t.Fatalf("shard %d seq %d: results diverge between file and slice source",
				got[i].shard, got[i].seq)
		}
	}

	// And a second pass over a fresh source is identical (cursors are
	// per-source, the reader is reusable).
	again := collectBatches(t, s, r.Source())
	if !reflect.DeepEqual(got, again) {
		t.Fatal("second stream over the same reader diverges")
	}
}

func TestReaderMappedOnLinux(t *testing.T) {
	path := writeFile(t, testAddrs(4, 100), 1<<20)
	r, err := hlfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	t.Logf("mmap active: %v", r.Mapped())
}
