package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hitlist6/internal/ip6"
)

// writeCheckpoint commits a checkpoint with the given payload files.
func writeCheckpoint(t *testing.T, dest string, files map[string]string, m Manifest) {
	t.Helper()
	w, err := Begin(dest)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range files {
		f, err := w.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
		f.SetCount(int64(len(body)))
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(m); err != nil {
		t.Fatal(err)
	}
}

func TestCommitOpenRoundtrip(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "ckpt")
	writeCheckpoint(t, dest,
		map[string]string{"a.bin": "alpha", "b.bin": "bravo-bravo"},
		Manifest{ScanIndex: 3, LastDay: 21, Generation: 7})

	s, err := Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Manifest
	if m.Version != Version || m.ScanIndex != 3 || m.LastDay != 21 || m.Generation != 7 {
		t.Fatalf("manifest = %+v", m)
	}
	if !s.Has("a.bin") || !s.Has("b.bin") || s.Has("c.bin") {
		t.Fatal("Has reports wrong payload set")
	}
	fi, ok := s.Info("b.bin")
	if !ok || fi.Bytes != 11 || fi.Count != 11 {
		t.Fatalf("Info(b.bin) = %+v, %v", fi, ok)
	}
	body, err := os.ReadFile(s.Path("a.bin"))
	if err != nil || string(body) != "alpha" {
		t.Fatalf("payload a.bin = %q, %v", body, err)
	}
	// No staging or .prev debris after a clean commit.
	if _, err := os.Stat(dest + ".prev"); !os.IsNotExist(err) {
		t.Fatalf(".prev left behind: %v", err)
	}
}

func TestCommitReplacesExisting(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "ckpt")
	writeCheckpoint(t, dest, map[string]string{"a.bin": "old"}, Manifest{ScanIndex: 1})
	writeCheckpoint(t, dest, map[string]string{"a.bin": "new!", "b.bin": "added"}, Manifest{ScanIndex: 2})

	s, err := Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest.ScanIndex != 2 {
		t.Fatalf("scan index = %d, want 2", s.Manifest.ScanIndex)
	}
	body, err := os.ReadFile(s.Path("a.bin"))
	if err != nil || string(body) != "new!" {
		t.Fatalf("payload a.bin = %q, %v", body, err)
	}
	if _, err := os.Stat(dest + ".prev"); !os.IsNotExist(err) {
		t.Fatalf(".prev left behind: %v", err)
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	parent := t.TempDir()
	dest := filepath.Join(parent, "ckpt")
	w, err := Begin(dest)
	if err != nil {
		t.Fatal(err)
	}
	f, err := w.Create("a.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("doomed"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("abort left %d entries in %s", len(entries), parent)
	}
}

// TestResolvePrevFallback covers the narrow commit crash window: the
// previous checkpoint parked at dest+".prev" but the new one not yet
// renamed into place. Resolve must fall back to the parked copy and
// Open must validate it fully.
func TestResolvePrevFallback(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "ckpt")
	writeCheckpoint(t, dest, map[string]string{"a.bin": "survivor"}, Manifest{ScanIndex: 5})
	// Simulate the crash: dest was renamed away, replacement never landed.
	if err := os.Rename(dest, dest+".prev"); err != nil {
		t.Fatal(err)
	}

	resolved, err := Resolve(dest)
	if err != nil {
		t.Fatal(err)
	}
	if resolved != dest+".prev" {
		t.Fatalf("resolved %s, want %s", resolved, dest+".prev")
	}
	s, err := Open(resolved)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest.ScanIndex != 5 {
		t.Fatalf("scan index = %d, want 5", s.Manifest.ScanIndex)
	}
}

func TestResolveMissing(t *testing.T) {
	_, err := Resolve(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestOpenRefusesCorruption: every damage mode — truncation, bit flips,
// a deleted payload, garbage or version-skewed manifests — must refuse
// with ErrCorrupt rather than half-load.
func TestOpenRefusesCorruption(t *testing.T) {
	cases := []struct {
		label  string
		damage func(t *testing.T, dest string)
	}{
		{"truncated payload", func(t *testing.T, dest string) {
			if err := os.Truncate(filepath.Join(dest, "a.bin"), 2); err != nil {
				t.Fatal(err)
			}
		}},
		{"extended payload", func(t *testing.T, dest string) {
			f, err := os.OpenFile(filepath.Join(dest, "a.bin"), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("x"))
			f.Close()
		}},
		{"bit flip", func(t *testing.T, dest string) {
			path := filepath.Join(dest, "a.bin")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing payload", func(t *testing.T, dest string) {
			if err := os.Remove(filepath.Join(dest, "a.bin")); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage manifest", func(t *testing.T, dest string) {
			if err := os.WriteFile(filepath.Join(dest, ManifestName), []byte("{\"version\": 1,"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version skew", func(t *testing.T, dest string) {
			if err := os.WriteFile(filepath.Join(dest, ManifestName), []byte("{\"version\": 99}\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			dest := filepath.Join(t.TempDir(), "ckpt")
			writeCheckpoint(t, dest, map[string]string{"a.bin": "payload bytes"}, Manifest{})
			tc.damage(t, dest)
			if _, err := Open(dest); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestCreateRejectsBadNames(t *testing.T) {
	w, err := Begin(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	for _, name := range []string{ManifestName, "sub/file.bin", "../escape"} {
		if _, err := w.Create(name); err == nil {
			t.Fatalf("Create(%q) succeeded; want refusal", name)
		}
	}
}

func TestJournalRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.journal")
	recs := []struct {
		feed int32
		addr ip6.Addr
	}{
		{0, ip6.MustParseAddr("2001:db8::1")},
		{2, ip6.MustParseAddr("2001:db8::2")},
		{1, ip6.MustParseAddr("fe80::1")},
	}

	jw, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := jw.Add(r.feed, r.addr); err != nil {
			t.Fatal(err)
		}
	}
	if jw.Count() != int64(len(recs)) {
		t.Fatalf("count = %d", jw.Count())
	}
	if err := jw.Finish(); err != nil {
		t.Fatal(err)
	}

	count, bytes, ok, err := JournalStat(path)
	if err != nil || !ok || count != int64(len(recs)) {
		t.Fatalf("JournalStat = %d, %d, %v, %v", count, bytes, ok, err)
	}

	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		feed, addr, ok, err := jr.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if feed != want.feed || addr != want.addr {
			t.Fatalf("record %d = (%d, %v), want (%d, %v)", i, feed, addr, want.feed, want.addr)
		}
	}
	if _, _, ok, err := jr.Next(); ok || err != nil {
		t.Fatalf("past end: ok=%v err=%v", ok, err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jr.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := JournalStat(path); ok || err != nil {
		t.Fatalf("after remove: ok=%v err=%v", ok, err)
	}
}

func TestJournalDiscard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.journal")
	jw, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jw.Add(0, ip6.MustParseAddr("2001:db8::1"))
	jw.Discard()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("discarded journal still present: %v", err)
	}
}

func TestOpenJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.journal")
	if err := os.WriteFile(path, []byte("NOPE-not-a-journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
