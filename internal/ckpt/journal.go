package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"hitlist6/internal/ip6"
)

// The ingest journal is the rollback buffer of chunked admission: one
// scan's candidate stream — every (feed, address) pair, in the
// deterministic feed-name-sorted sequence — spooled to disk before any
// admission runs. The admitting side then replays it in bounded chunks,
// so a hitlist-scale import is never scan-input-sized resident, while a
// source error simply discards the journal with nothing admitted (the
// same all-or-nothing contract the resident paths keep by collecting
// first). The journal is transient within one scan: a journal file found
// at restore time is debris from a crash mid-scan and is discarded —
// recovery restarts that scan from the last finalized checkpoint.
//
// Layout: 4-byte magic "HL6J", then 20-byte records of uint32
// little-endian feed index + 16 raw address bytes.

// journalMagic identifies ingest journal files.
var journalMagic = [4]byte{'H', 'L', '6', 'J'}

// journalRecBytes is the on-disk size of one journal record.
const journalRecBytes = 4 + ip6.AddrBytes

// JournalWriter spools one scan's candidate sequence.
type JournalWriter struct {
	path  string
	f     *os.File
	bw    *bufio.Writer
	count int64
}

// CreateJournal creates (truncating) the journal file at path.
func CreateJournal(path string) (*JournalWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: creating journal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64*1024)
	if _, err := bw.Write(journalMagic[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("ckpt: writing journal: %w", err)
	}
	return &JournalWriter{path: path, f: f, bw: bw}, nil
}

// Add appends one candidate record.
func (j *JournalWriter) Add(feed int32, a ip6.Addr) error {
	var rec [journalRecBytes]byte
	binary.LittleEndian.PutUint32(rec[:], uint32(feed))
	copy(rec[4:], a[:])
	if _, err := j.bw.Write(rec[:]); err != nil {
		return fmt.Errorf("ckpt: writing journal: %w", err)
	}
	j.count++
	return nil
}

// Count returns the records appended so far.
func (j *JournalWriter) Count() int64 { return j.count }

// Finish flushes and closes the journal, leaving the file in place for
// replay. No fsync: the journal's job is rollback within one process
// lifetime, not crash durability — after a crash the whole scan replays
// from the previous checkpoint and any journal found is discarded.
func (j *JournalWriter) Finish() error {
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("ckpt: flushing journal: %w", err)
	}
	return j.f.Close()
}

// Discard closes and removes the journal — the abort path.
func (j *JournalWriter) Discard() {
	j.f.Close()
	os.Remove(j.path)
}

// JournalReader replays a journal in write order.
type JournalReader struct {
	path string
	f    *os.File
	br   *bufio.Reader
}

// OpenJournal opens the journal at path for replay.
func OpenJournal(path string) (*JournalReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 64*1024)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil || m != journalMagic {
		f.Close()
		return nil, fmt.Errorf("%w: journal %s: bad magic", ErrCorrupt, path)
	}
	return &JournalReader{path: path, f: f, br: br}, nil
}

// Next returns the next record; ok=false at end of journal.
func (j *JournalReader) Next() (feed int32, a ip6.Addr, ok bool, err error) {
	var rec [journalRecBytes]byte
	if _, rerr := io.ReadFull(j.br, rec[:]); rerr != nil {
		if rerr == io.EOF {
			return 0, ip6.Addr{}, false, nil
		}
		return 0, ip6.Addr{}, false, fmt.Errorf("ckpt: reading journal: %w", rerr)
	}
	feed = int32(binary.LittleEndian.Uint32(rec[:]))
	copy(a[:], rec[4:])
	return feed, a, true, nil
}

// Close closes the reader (the file stays; the replaying owner removes
// it after a successful replay).
func (j *JournalReader) Close() error { return j.f.Close() }

// Remove deletes the journal file.
func (j *JournalReader) Remove() error { return os.Remove(j.path) }

// JournalStat reports a journal file's record count from its size — the
// status line `hl6 info` prints for a checkpoint directory. Missing file
// returns ok=false with a nil error.
func JournalStat(path string) (count int64, bytes int64, ok bool, err error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	n := st.Size() - int64(len(journalMagic))
	if n < 0 {
		n = 0
	}
	return n / journalRecBytes, st.Size(), true, nil
}
