// Package ckpt implements crash-consistent checkpoint directories: a set
// of named payload files plus a manifest recording each file's size and
// CRC, committed atomically so that a reader always finds either a
// complete previous checkpoint or a complete new one — never a partial
// mix, no matter where a crash lands.
//
// Write protocol (Begin → Create/Close per file → Commit):
//
//  1. every payload file is written into a fresh temp directory next to
//     the destination and fsynced on close;
//  2. the manifest — naming every payload file with its byte size and
//     CRC-64 — is written and fsynced last, so a temp directory holding
//     a manifest holds everything the manifest promises;
//  3. Commit renames the previous checkpoint (if any) to dest+".prev",
//     renames the temp directory to dest, and removes the ".prev" copy.
//
// The only crash windows are therefore: no manifest in the temp dir
// (garbage, ignored), dest missing but dest+".prev" complete (Resolve
// falls back to it), or both present (dest is newer and wins). Open
// re-verifies every payload file's size and CRC against the manifest
// before handing anything to the caller — a truncated, bit-flipped or
// missing file refuses loudly with ErrCorrupt rather than half-loading.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name inside a checkpoint directory.
const ManifestName = "manifest.json"

// Version is the current checkpoint format version.
const Version = 1

// ErrCorrupt tags every validation failure Open returns (wrapped with
// detail); errors.Is(err, ErrCorrupt) distinguishes a damaged checkpoint
// from plain I/O errors.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// crcTable is the CRC-64/ECMA table every file checksum uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// FileInfo describes one payload file in the manifest.
type FileInfo struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC   string `json:"crc64"` // 16 hex digits, CRC-64/ECMA of the contents
	Count int64  `json:"count,omitempty"`
}

// Manifest is the checkpoint's table of contents plus the service-level
// cursor fields the owner stamps at Commit (displayed by `hl6 info`).
type Manifest struct {
	Version    int        `json:"version"`
	ScanIndex  int        `json:"scan_index"`
	LastDay    int        `json:"last_day"`
	Generation uint64     `json:"generation"`
	Files      []FileInfo `json:"files"`
}

// Writer stages one checkpoint. Files must be created and closed one at
// a time; Commit finalizes, Abort discards.
type Writer struct {
	dest  string
	tmp   string
	files []FileInfo
	done  bool
}

// Begin stages a checkpoint targeting the directory dest. The temp
// staging directory is created next to dest (same filesystem, so the
// commit renames are atomic).
func Begin(dest string) (*Writer, error) {
	parent := filepath.Dir(dest)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating checkpoint parent: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, filepath.Base(dest)+".tmp-")
	if err != nil {
		return nil, fmt.Errorf("ckpt: creating staging dir: %w", err)
	}
	return &Writer{dest: dest, tmp: tmp}, nil
}

// File is one payload file being written: an io.Writer that tracks size
// and CRC, fsyncs on Close, and records itself in the manifest.
type File struct {
	w     *Writer
	name  string
	f     *os.File
	crc   hash.Hash64
	n     int64
	count int64
}

// Create opens payload file name in the staging directory. Close the
// returned File before creating the next one.
func (w *Writer) Create(name string) (*File, error) {
	if name == ManifestName || name != filepath.Base(name) {
		return nil, fmt.Errorf("ckpt: invalid payload file name %q", name)
	}
	f, err := os.Create(filepath.Join(w.tmp, name))
	if err != nil {
		return nil, fmt.Errorf("ckpt: creating %s: %w", name, err)
	}
	return &File{w: w, name: name, f: f, crc: crc64.New(crcTable)}, nil
}

// Write appends to the payload, folding the bytes into the running CRC.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	f.crc.Write(p[:n])
	f.n += int64(n)
	return n, err
}

// SetCount records an item count (addresses, records) in the file's
// manifest entry — display metadata only, not validated.
func (f *File) SetCount(n int64) { f.count = n }

// Close fsyncs the payload and records its manifest entry.
func (f *File) Close() error {
	if err := f.f.Sync(); err != nil {
		f.f.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", f.name, err)
	}
	if err := f.f.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", f.name, err)
	}
	f.w.files = append(f.w.files, FileInfo{
		Name:  f.name,
		Bytes: f.n,
		CRC:   fmt.Sprintf("%016x", f.crc.Sum64()),
		Count: f.count,
	})
	return nil
}

// Abort discards the staged checkpoint. No-op after Commit or a prior
// Abort.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	os.RemoveAll(w.tmp)
}

// Commit writes the manifest (stamped with the writer's file table) and
// atomically replaces dest with the staged directory. On error the
// staging directory is removed and dest is untouched — except in the
// narrow window between the two renames, which Resolve covers via the
// ".prev" fallback.
func (w *Writer) Commit(m Manifest) error {
	if w.done {
		return fmt.Errorf("ckpt: writer already finished")
	}
	m.Version = Version
	m.Files = w.files
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		w.Abort()
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(w.tmp, ManifestName), data); err != nil {
		w.Abort()
		return err
	}
	// Make the staged directory's entries durable before it becomes
	// reachable under the destination name.
	syncDir(w.tmp)

	prev := w.dest + ".prev"
	// A stale .prev can only be debris from an earlier crash inside this
	// window; the live checkpoint at dest supersedes it.
	if err := os.RemoveAll(prev); err != nil {
		w.Abort()
		return fmt.Errorf("ckpt: clearing stale %s: %w", prev, err)
	}
	if _, err := os.Stat(w.dest); err == nil {
		if err := os.Rename(w.dest, prev); err != nil {
			w.Abort()
			return fmt.Errorf("ckpt: parking previous checkpoint: %w", err)
		}
	} else if !os.IsNotExist(err) {
		w.Abort()
		return fmt.Errorf("ckpt: checking %s: %w", w.dest, err)
	}
	if err := os.Rename(w.tmp, w.dest); err != nil {
		// Put the previous checkpoint back so the destination name stays
		// valid; the staged copy is dropped.
		os.Rename(prev, w.dest)
		w.Abort()
		return fmt.Errorf("ckpt: publishing checkpoint: %w", err)
	}
	w.done = true
	syncDir(filepath.Dir(w.dest))
	if err := os.RemoveAll(prev); err != nil {
		return fmt.Errorf("ckpt: removing %s: %w", prev, err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ckpt: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory's entries, best-effort: not every
// filesystem supports it, and the rename protocol is still correct
// without it on those (the crash windows just widen to the page-cache
// flush).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Resolve picks the directory a restore should read: dir itself when it
// holds a manifest, else dir+".prev" — the crash window where Commit had
// parked the previous checkpoint but not yet published the new one.
// When neither exists the error wraps os.ErrNotExist.
func Resolve(dir string) (string, error) {
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return dir, nil
	} else if !os.IsNotExist(err) {
		return "", fmt.Errorf("ckpt: probing %s: %w", dir, err)
	}
	prev := dir + ".prev"
	if _, err := os.Stat(filepath.Join(prev, ManifestName)); err == nil {
		return prev, nil
	} else if !os.IsNotExist(err) {
		return "", fmt.Errorf("ckpt: probing %s: %w", prev, err)
	}
	return "", fmt.Errorf("ckpt: no checkpoint at %s: %w", dir, os.ErrNotExist)
}

// Snapshot is an opened, fully validated checkpoint.
type Snapshot struct {
	Dir      string
	Manifest Manifest

	byName map[string]FileInfo
}

// ReadManifest parses a checkpoint directory's manifest without
// validating the payload files — the cheap path for status display.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, m.Version, Version)
	}
	return m, nil
}

// Open reads dir's manifest and verifies every payload file it names —
// existence, exact byte size, and CRC — before returning. Any mismatch
// returns an error wrapping ErrCorrupt; nothing is ever half-loaded.
func Open(dir string) (*Snapshot, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Dir: dir, Manifest: m, byName: make(map[string]FileInfo, len(m.Files))}
	for _, fi := range m.Files {
		if err := verifyFile(dir, fi); err != nil {
			return nil, err
		}
		s.byName[fi.Name] = fi
	}
	return s, nil
}

// verifyFile checks one payload file's size and CRC against its entry.
func verifyFile(dir string, fi FileInfo) error {
	f, err := os.Open(filepath.Join(dir, fi.Name))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s missing", ErrCorrupt, fi.Name)
		}
		return err
	}
	defer f.Close()
	crc := crc64.New(crcTable)
	n, err := io.Copy(crc, f)
	if err != nil {
		return fmt.Errorf("ckpt: reading %s: %w", fi.Name, err)
	}
	if n != fi.Bytes {
		return fmt.Errorf("%w: %s is %d bytes, manifest says %d", ErrCorrupt, fi.Name, n, fi.Bytes)
	}
	if got := fmt.Sprintf("%016x", crc.Sum64()); got != fi.CRC {
		return fmt.Errorf("%w: %s CRC %s, manifest says %s", ErrCorrupt, fi.Name, got, fi.CRC)
	}
	return nil
}

// Path returns the absolute path of payload file name.
func (s *Snapshot) Path(name string) string { return filepath.Join(s.Dir, name) }

// Has reports whether the manifest names the payload file.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Info returns the manifest entry for name.
func (s *Snapshot) Info(name string) (FileInfo, bool) {
	fi, ok := s.byName[name]
	return fi, ok
}
