// Package ckpt implements crash-consistent checkpoint directories: a set
// of named payload files plus a manifest recording each file's size and
// CRC, committed atomically so that a reader always finds either a
// complete previous checkpoint or a complete new one — never a partial
// mix, no matter where a crash lands.
//
// Write protocol (Begin → Create/Close per file → Commit):
//
//  1. every payload file is written into a fresh temp directory next to
//     the destination and fsynced on close;
//  2. the manifest — naming every payload file with its byte size and
//     CRC-64 — is written and fsynced last, so a temp directory holding
//     a manifest holds everything the manifest promises;
//  3. Commit renames the previous checkpoint (if any) to dest+".prev",
//     renames the temp directory to dest, and removes the ".prev" copy.
//
// The only crash windows are therefore: no manifest in the temp dir
// (garbage, ignored), dest missing but dest+".prev" complete (Resolve
// falls back to it), or both present (dest is newer and wins). Open
// re-verifies every payload file's size and CRC against the manifest
// before handing anything to the caller — a truncated, bit-flipped or
// missing file refuses loudly with ErrCorrupt rather than half-loading.
//
// # Delta chains
//
// A checkpoint may be written as a delta against the checkpoint
// currently at dest (BeginDelta): payload files marked Delta carry only
// the shards named in their DeltaShards bitmap, and the manifest's
// Parent field names the sibling directory — dest + ".p<scanIndex>" —
// the superseded head is parked under at commit time instead of being
// removed. OpenChain resolves the whole parent chain (every level fully
// CRC-verified; a missing or damaged parent is ErrCorrupt), and
// FindShard answers "which chain level holds the current content of
// shard sh" — the newest level whose payload carries that shard. The
// delta commit's crash windows mirror the full commit's: before the
// park rename the old chain is intact at dest; between the park and
// publish renames Resolve falls back to the highest-numbered parked
// parent; after publish the new head is live. A full (non-delta) commit
// into dest collapses the chain: its .p* parents are removed once the
// new head is durable.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ManifestName is the manifest's file name inside a checkpoint directory.
const ManifestName = "manifest.json"

// Version is the current checkpoint format version.
const Version = 1

// ErrCorrupt tags every validation failure Open returns (wrapped with
// detail); errors.Is(err, ErrCorrupt) distinguishes a damaged checkpoint
// from plain I/O errors.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// crcTable is the CRC-64/ECMA table every file checksum uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// FileInfo describes one payload file in the manifest.
type FileInfo struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC   string `json:"crc64"` // 16 hex digits, CRC-64/ECMA of the contents
	Count int64  `json:"count,omitempty"`

	// Delta marks a payload written as a shard delta: only the shards
	// whose bit is set in DeltaShards are present in this file; every
	// other shard's content lives at some older chain level. A payload
	// without Delta carries all shards.
	Delta       bool   `json:"delta,omitempty"`
	DeltaShards string `json:"delta_shards,omitempty"` // 16 hex digits, bit i = shard i present
}

// Manifest is the checkpoint's table of contents plus the service-level
// cursor fields the owner stamps at Commit (displayed by `hl6 info`).
type Manifest struct {
	Version    int        `json:"version"`
	ScanIndex  int        `json:"scan_index"`
	LastDay    int        `json:"last_day"`
	Generation uint64     `json:"generation"`
	Files      []FileInfo `json:"files"`

	// Parent names the sibling directory holding the checkpoint this one
	// is a delta against ("" for a full checkpoint); Depth is the chain
	// length above the full base (0 for full).
	Parent string `json:"parent,omitempty"`
	Depth  int    `json:"depth,omitempty"`
}

// Writer stages one checkpoint. Files must be created and closed one at
// a time; Commit finalizes, Abort discards.
type Writer struct {
	dest  string
	tmp   string
	files []FileInfo
	done  bool

	// Delta staging (BeginDelta): the sibling name the current head will
	// be parked under at commit, and its chain depth.
	parentName  string
	parentDepth int
}

// Begin stages a checkpoint targeting the directory dest. The temp
// staging directory is created next to dest (same filesystem, so the
// commit renames are atomic).
func Begin(dest string) (*Writer, error) {
	parent := filepath.Dir(dest)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating checkpoint parent: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, filepath.Base(dest)+".tmp-")
	if err != nil {
		return nil, fmt.Errorf("ckpt: creating staging dir: %w", err)
	}
	return &Writer{dest: dest, tmp: tmp}, nil
}

// BeginDelta stages a checkpoint that chains onto the checkpoint
// currently at dest: Commit parks the current head under a stable
// sibling name (dest + ".p<scanIndex>") instead of removing it, and the
// new manifest records that name as its parent. dest must hold a
// readable manifest — callers fall back to Begin (a full rewrite) when
// it does not.
func BeginDelta(dest string) (*Writer, error) {
	pm, err := ReadManifest(dest)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading delta parent manifest: %w", err)
	}
	w, err := Begin(dest)
	if err != nil {
		return nil, err
	}
	w.parentName = fmt.Sprintf("%s.p%d", filepath.Base(dest), pm.ScanIndex)
	w.parentDepth = pm.Depth
	return w, nil
}

// File is one payload file being written: an io.Writer that tracks size
// and CRC, fsyncs on Close, and records itself in the manifest.
type File struct {
	w           *Writer
	name        string
	f           *os.File
	crc         hash.Hash64
	n           int64
	count       int64
	delta       bool
	deltaShards uint64
}

// Create opens payload file name in the staging directory. Close the
// returned File before creating the next one.
func (w *Writer) Create(name string) (*File, error) {
	if name == ManifestName || name != filepath.Base(name) {
		return nil, fmt.Errorf("ckpt: invalid payload file name %q", name)
	}
	f, err := os.Create(filepath.Join(w.tmp, name))
	if err != nil {
		return nil, fmt.Errorf("ckpt: creating %s: %w", name, err)
	}
	return &File{w: w, name: name, f: f, crc: crc64.New(crcTable)}, nil
}

// Write appends to the payload, folding the bytes into the running CRC.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	f.crc.Write(p[:n])
	f.n += int64(n)
	return n, err
}

// SetCount records an item count (addresses, records) in the file's
// manifest entry — display metadata only, not validated.
func (f *File) SetCount(n int64) { f.count = n }

// SetDeltaShards marks the file as a shard delta carrying exactly the
// shards whose bit is set in mask (bit i = shard i). Unlike Count this
// is load-bearing: readers resolve absent shards through the parent
// chain.
func (f *File) SetDeltaShards(mask uint64) {
	f.delta = true
	f.deltaShards = mask
}

// Close fsyncs the payload and records its manifest entry.
func (f *File) Close() error {
	if err := f.f.Sync(); err != nil {
		f.f.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", f.name, err)
	}
	if err := f.f.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", f.name, err)
	}
	fi := FileInfo{
		Name:  f.name,
		Bytes: f.n,
		CRC:   fmt.Sprintf("%016x", f.crc.Sum64()),
		Count: f.count,
	}
	if f.delta {
		fi.Delta = true
		fi.DeltaShards = fmt.Sprintf("%016x", f.deltaShards)
	}
	f.w.files = append(f.w.files, fi)
	return nil
}

// Abort discards the staged checkpoint. No-op after Commit or a prior
// Abort.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	os.RemoveAll(w.tmp)
}

// Commit writes the manifest (stamped with the writer's file table) and
// atomically replaces dest with the staged directory. On error the
// staging directory is removed and dest is untouched — except in the
// narrow window between the two renames, which Resolve covers via the
// ".prev" fallback.
func (w *Writer) Commit(m Manifest) error {
	if w.done {
		return fmt.Errorf("ckpt: writer already finished")
	}
	m.Version = Version
	m.Files = w.files
	if w.parentName != "" {
		m.Parent = w.parentName
		m.Depth = w.parentDepth + 1
	}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		w.Abort()
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(w.tmp, ManifestName), data); err != nil {
		w.Abort()
		return err
	}
	// Make the staged directory's entries durable before it becomes
	// reachable under the destination name.
	syncDir(w.tmp)

	if w.parentName != "" {
		return w.commitDelta()
	}

	prev := w.dest + ".prev"
	// A stale .prev can only be debris from an earlier crash inside this
	// window; the live checkpoint at dest supersedes it.
	if err := os.RemoveAll(prev); err != nil {
		w.Abort()
		return fmt.Errorf("ckpt: clearing stale %s: %w", prev, err)
	}
	if _, err := os.Stat(w.dest); err == nil {
		if err := os.Rename(w.dest, prev); err != nil {
			w.Abort()
			return fmt.Errorf("ckpt: parking previous checkpoint: %w", err)
		}
	} else if !os.IsNotExist(err) {
		w.Abort()
		return fmt.Errorf("ckpt: checking %s: %w", w.dest, err)
	}
	if err := os.Rename(w.tmp, w.dest); err != nil {
		// Put the previous checkpoint back so the destination name stays
		// valid; the staged copy is dropped.
		os.Rename(prev, w.dest)
		w.Abort()
		return fmt.Errorf("ckpt: publishing checkpoint: %w", err)
	}
	w.done = true
	syncDir(filepath.Dir(w.dest))
	if err := os.RemoveAll(prev); err != nil {
		return fmt.Errorf("ckpt: removing %s: %w", prev, err)
	}
	// A full checkpoint is self-contained: parked parents from a
	// superseded delta chain are debris once the new head is durable.
	return removeChain(w.dest)
}

// commitDelta publishes a delta checkpoint: the current head moves to
// its stable parent slot (the name the staged manifest already records),
// then the staged directory takes the head's place. A crash before the
// park leaves the old chain intact at dest; between the renames Resolve
// falls back to the highest-numbered parked parent; after them the new
// head is live.
func (w *Writer) commitDelta() error {
	park := filepath.Join(filepath.Dir(w.dest), w.parentName)
	if _, err := os.Stat(park); err == nil {
		w.Abort()
		return fmt.Errorf("ckpt: delta parent slot %s already occupied", park)
	} else if !os.IsNotExist(err) {
		w.Abort()
		return fmt.Errorf("ckpt: checking %s: %w", park, err)
	}
	if err := os.Rename(w.dest, park); err != nil {
		w.Abort()
		return fmt.Errorf("ckpt: parking delta parent: %w", err)
	}
	if err := os.Rename(w.tmp, w.dest); err != nil {
		// Put the parent back under the head name so dest stays valid.
		os.Rename(park, w.dest)
		w.Abort()
		return fmt.Errorf("ckpt: publishing delta checkpoint: %w", err)
	}
	w.done = true
	syncDir(filepath.Dir(w.dest))
	return nil
}

// chainDirs lists dest's parked delta parents — sibling directories
// named dest + ".p<digits>" — in ascending scan-index order.
func chainDirs(dest string) ([]string, error) {
	matches, err := filepath.Glob(dest + ".p*")
	if err != nil {
		return nil, fmt.Errorf("ckpt: listing chain of %s: %w", dest, err)
	}
	var dirs []string
	var scans []int
	for _, m := range matches {
		n, err := strconv.Atoi(strings.TrimPrefix(m, dest+".p"))
		if err != nil {
			continue // ".prev", journals, unrelated siblings
		}
		dirs = append(dirs, m)
		scans = append(scans, n)
	}
	// Insertion sort by scan index — chains are bounded-depth small.
	for i := 1; i < len(dirs); i++ {
		for j := i; j > 0 && scans[j] < scans[j-1]; j-- {
			scans[j], scans[j-1] = scans[j-1], scans[j]
			dirs[j], dirs[j-1] = dirs[j-1], dirs[j]
		}
	}
	return dirs, nil
}

// removeChain deletes dest's parked delta parents.
func removeChain(dest string) error {
	dirs, err := chainDirs(dest)
	if err != nil {
		return err
	}
	for _, d := range dirs {
		if err := os.RemoveAll(d); err != nil {
			return fmt.Errorf("ckpt: removing superseded chain dir %s: %w", d, err)
		}
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ckpt: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory's entries, best-effort: not every
// filesystem supports it, and the rename protocol is still correct
// without it on those (the crash windows just widen to the page-cache
// flush).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Resolve picks the directory a restore should read: dir itself when it
// holds a manifest, else dir+".prev" (the crash window where a full
// Commit had parked the previous checkpoint but not yet published the
// new one), else the highest-scan-index parked delta parent dir+".p<N>"
// (the same window in a delta Commit). When none exists the error wraps
// os.ErrNotExist.
func Resolve(dir string) (string, error) {
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return dir, nil
	} else if !os.IsNotExist(err) {
		return "", fmt.Errorf("ckpt: probing %s: %w", dir, err)
	}
	prev := dir + ".prev"
	if _, err := os.Stat(filepath.Join(prev, ManifestName)); err == nil {
		return prev, nil
	} else if !os.IsNotExist(err) {
		return "", fmt.Errorf("ckpt: probing %s: %w", prev, err)
	}
	if chain, err := chainDirs(dir); err == nil {
		for i := len(chain) - 1; i >= 0; i-- {
			if _, err := os.Stat(filepath.Join(chain[i], ManifestName)); err == nil {
				return chain[i], nil
			}
		}
	}
	return "", fmt.Errorf("ckpt: no checkpoint at %s: %w", dir, os.ErrNotExist)
}

// Snapshot is an opened, fully validated checkpoint — one level of a
// (possibly single-level) delta chain. Parent is non-nil when this level
// was opened through OpenChain and is a delta.
type Snapshot struct {
	Dir      string
	Manifest Manifest
	Parent   *Snapshot

	byName map[string]FileInfo
}

// ReadManifest parses a checkpoint directory's manifest without
// validating the payload files — the cheap path for status display.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, m.Version, Version)
	}
	return m, nil
}

// Open reads dir's manifest and verifies every payload file it names —
// existence, exact byte size, and CRC — before returning. Any mismatch
// returns an error wrapping ErrCorrupt; nothing is ever half-loaded.
func Open(dir string) (*Snapshot, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Dir: dir, Manifest: m, byName: make(map[string]FileInfo, len(m.Files))}
	for _, fi := range m.Files {
		if err := verifyFile(dir, fi); err != nil {
			return nil, err
		}
		s.byName[fi.Name] = fi
	}
	return s, nil
}

// verifyFile checks one payload file's size and CRC against its entry.
func verifyFile(dir string, fi FileInfo) error {
	f, err := os.Open(filepath.Join(dir, fi.Name))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s missing", ErrCorrupt, fi.Name)
		}
		return err
	}
	defer f.Close()
	crc := crc64.New(crcTable)
	n, err := io.Copy(crc, f)
	if err != nil {
		return fmt.Errorf("ckpt: reading %s: %w", fi.Name, err)
	}
	if n != fi.Bytes {
		return fmt.Errorf("%w: %s is %d bytes, manifest says %d", ErrCorrupt, fi.Name, n, fi.Bytes)
	}
	if got := fmt.Sprintf("%016x", crc.Sum64()); got != fi.CRC {
		return fmt.Errorf("%w: %s CRC %s, manifest says %s", ErrCorrupt, fi.Name, got, fi.CRC)
	}
	return nil
}

// maxChainDepth guards OpenChain against parent-reference cycles and
// runaway chains; real chains are bounded by the writer's compaction
// cadence, orders of magnitude below this.
const maxChainDepth = 1 << 10

// OpenChain opens dir like Open, then resolves and fully verifies its
// delta-parent chain: every level's payloads are size- and CRC-checked,
// and a missing, unreadable or cyclic parent refuses with ErrCorrupt —
// a delta head whose history is damaged must not half-load.
func OpenChain(dir string) (*Snapshot, error) {
	head, err := Open(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{filepath.Base(dir): true}
	for cur, depth := head, 0; cur.Manifest.Parent != ""; depth++ {
		if depth >= maxChainDepth {
			return nil, fmt.Errorf("%w: delta chain deeper than %d", ErrCorrupt, maxChainDepth)
		}
		name := cur.Manifest.Parent
		if name != filepath.Base(name) || seen[name] {
			return nil, fmt.Errorf("%w: invalid parent reference %q", ErrCorrupt, name)
		}
		seen[name] = true
		p, err := Open(filepath.Join(filepath.Dir(cur.Dir), name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("%w: delta parent %s missing", ErrCorrupt, name)
			}
			return nil, err
		}
		cur.Parent = p
		cur = p
	}
	return head, nil
}

// Path returns the absolute path of payload file name.
func (s *Snapshot) Path(name string) string { return filepath.Join(s.Dir, name) }

// Has reports whether the manifest names the payload file.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Info returns the manifest entry for name.
func (s *Snapshot) Info(name string) (FileInfo, bool) {
	fi, ok := s.byName[name]
	return fi, ok
}

// HasShard reports whether this snapshot's own copy of payload name
// carries shard sh: a full payload carries every shard, a delta only
// those in its bitmap.
func (s *Snapshot) HasShard(name string, sh int) bool {
	fi, ok := s.byName[name]
	if !ok {
		return false
	}
	if !fi.Delta {
		return true
	}
	mask, err := strconv.ParseUint(fi.DeltaShards, 16, 64)
	if err != nil {
		return false
	}
	return mask&(1<<uint(sh)) != 0
}

// FindShard returns the newest chain level (this snapshot or an
// ancestor) whose payload name carries shard sh, or nil when no level
// does. That level holds the shard's current content: a delta writes a
// shard exactly when it changed, so absence at newer levels proves the
// older copy is still current.
func (s *Snapshot) FindShard(name string, sh int) *Snapshot {
	for cur := s; cur != nil; cur = cur.Parent {
		if cur.HasShard(name, sh) {
			return cur
		}
	}
	return nil
}

// HasInChain reports whether any chain level names the payload file.
func (s *Snapshot) HasInChain(name string) bool {
	for cur := s; cur != nil; cur = cur.Parent {
		if cur.Has(name) {
			return true
		}
	}
	return false
}
