// Package apd implements the IPv6 Hitlist's multi-level aliased prefix
// detection (Section 3.1 and 5 of the paper).
//
// A prefix is tested by choosing one pseudo-random address inside each of
// its 16 four-bit subprefixes and probing them with ICMP and TCP/80. If all
// 16 respond — merged across the two protocols and the previous three
// scans, to absorb probe loss — the prefix is labeled aliased (the paper
// suggests "fully responsive" as the better name).
//
// Candidates come from three levels: every BGP-announced prefix, every /64
// with at least one input address, and longer prefixes (in 4-bit steps up
// to /120) holding at least 100 input addresses.
package apd

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
)

// Config parameterizes the detector.
type Config struct {
	// MinAddrsLongPrefix is the input-address threshold for testing
	// prefixes longer than /64 (the paper uses 100).
	MinAddrsLongPrefix int

	// MaxPrefixLen bounds candidate length; the paper observed aliased
	// prefixes up to /120.
	MaxPrefixLen int

	// MergeScans is how many previous detection rounds are merged into
	// the current one (the paper merges with the previous three scans).
	MergeScans int

	// Protocols probed per slot; the service uses ICMP and TCP/80.
	Protocols []netmodel.Protocol
}

// DefaultConfig mirrors the service configuration.
func DefaultConfig() Config {
	return Config{
		MinAddrsLongPrefix: 100,
		MaxPrefixLen:       120,
		MergeScans:         3,
		Protocols:          []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80},
	}
}

// Candidates derives the multi-level candidate set from the BGP table and
// the service input addresses.
func Candidates(bgp []ip6.Prefix, input []ip6.Addr, cfg Config) []ip6.Prefix {
	seen := make(map[ip6.Prefix]struct{})
	var out []ip6.Prefix
	add := func(p ip6.Prefix) {
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}

	// Level 1: BGP-announced prefixes (subdividable ones only).
	for _, p := range bgp {
		if p.Bits()+4 <= 128 && p.Bits() <= cfg.MaxPrefixLen {
			add(p)
		}
	}

	// Level 2: /64s with at least one input address.
	// Level 3: longer prefixes (4-bit steps) with ≥ threshold addresses.
	perLen := make(map[int]map[ip6.Prefix]int)
	for l := 68; l <= cfg.MaxPrefixLen; l += 4 {
		perLen[l] = make(map[ip6.Prefix]int)
	}
	for _, a := range input {
		add(ip6.Slash64(a))
		for l := 68; l <= cfg.MaxPrefixLen; l += 4 {
			perLen[l][ip6.PrefixFrom(a, l)]++
		}
	}
	lens := make([]int, 0, len(perLen))
	for l := range perLen {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		for p, n := range perLen[l] {
			if n >= cfg.MinAddrsLongPrefix {
				add(p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// Detection records the outcome for one candidate in one round.
type Detection struct {
	Prefix ip6.Prefix
	// Bitmap has bit i set when slot i (subprefix nibble i) responded in
	// the current round.
	Bitmap uint16
	// Merged includes the previous MergeScans rounds.
	Merged uint16
	// Aliased is Merged == 0xffff.
	Aliased bool
}

// Result is one detection round over a candidate set.
type Result struct {
	Day        int
	Aliased    *ip6.PrefixSet
	Detections map[ip6.Prefix]Detection
	// Probes is the number of scanner probes this round used.
	Probes int
}

// Detector runs rounds of multi-level APD, remembering per-prefix history
// for the cross-scan merge.
type Detector struct {
	scanner *scan.Scanner
	cfg     Config
	history map[ip6.Prefix][]uint16
	// queue is the sharded slot queue, reused across rounds so
	// steady-state detection allocates no per-round slot storage.
	queue slotQueue
}

// NewDetector builds a detector using the given scanner.
func NewDetector(s *scan.Scanner, cfg Config) *Detector {
	if cfg.MinAddrsLongPrefix <= 0 {
		cfg.MinAddrsLongPrefix = 100
	}
	if cfg.MaxPrefixLen == 0 {
		cfg.MaxPrefixLen = 120
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}
	}
	return &Detector{scanner: s, cfg: cfg, history: make(map[ip6.Prefix][]uint16)}
}

// slotSalt hoists the stream label hash out of SlotAddr: seeding with
// mix^slotSalt draws identically to rng.NewStream(mix, "apd-slot"), and
// the value-typed stream stays on the stack — SlotAddr runs 16 times per
// candidate per round, so the per-slot heap stream was a hotspot.
var slotSalt = rng.HashString("apd-slot")

// SlotAddr returns the pseudo-random probe address for slot v (0–15) of
// prefix p in the round keyed by day. The draw is deterministic per
// (prefix, slot, day): stable within a round, fresh across rounds.
func SlotAddr(p ip6.Prefix, v byte, day int) ip6.Addr {
	sub := p.SubprefixOfNibble(v)
	r := rng.NewStreamSeed(rng.Mix(p.Addr().Hi(), p.Addr().Lo(), uint64(p.Bits()), uint64(v), uint64(day)) ^ slotSalt)
	return sub.RandomAddr(&r)
}

// slotRef ties one routed probe address back to its (candidate, slot)
// pair for bitmap assembly after the scan.
type slotRef struct {
	cand int32
	v    byte
}

// slotQueue is the sharded candidate queue feeding APD probe rounds into
// the scan engine: every candidate's 16 slot addresses are drawn exactly
// once and routed to their canonical shard alongside a back-reference,
// so the flat candidates×16 target slice of the pre-redesign detector
// never exists. It implements scan.ShardedSource — probe workers pull
// their shard's address slice directly (zero-copy spans) — and the
// detection loop walks the same shards to OR responsive slots into
// per-candidate bitmaps with shard-local set lookups.
type slotQueue struct {
	addrs [ip6.AddrShards][]ip6.Addr
	refs  [ip6.AddrShards][]slotRef
	// generic pull cursor (canonical shard order)
	sh, off int
}

// fill routes a round's slot addresses into the queue, reusing the
// previous round's backing arrays.
func (q *slotQueue) fill(candidates []ip6.Prefix, day int) error {
	for sh := range q.addrs {
		q.addrs[sh] = q.addrs[sh][:0]
		q.refs[sh] = q.refs[sh][:0]
	}
	q.sh, q.off = 0, 0
	for i, p := range candidates {
		if p.Bits()+4 > 128 {
			return fmt.Errorf("apd: candidate %v too long to subdivide", p)
		}
		for v := byte(0); v < 16; v++ {
			a := SlotAddr(p, v, day)
			sh := ip6.ShardOf(a)
			q.addrs[sh] = append(q.addrs[sh], a)
			q.refs[sh] = append(q.refs[sh], slotRef{cand: int32(i), v: v})
		}
	}
	return nil
}

func (q *slotQueue) Next(buf []ip6.Addr) (int, error) {
	for q.sh < ip6.AddrShards && q.off >= len(q.addrs[q.sh]) {
		q.sh++
		q.off = 0
	}
	if q.sh >= ip6.AddrShards {
		return 0, io.EOF
	}
	n := copy(buf, q.addrs[q.sh][q.off:])
	q.off += n
	return n, nil
}

func (q *slotQueue) ShardSource(sh int) scan.TargetSource {
	if len(q.addrs[sh]) == 0 {
		return nil
	}
	return scan.SliceSource(q.addrs[sh])
}

func (q *slotQueue) ShardLen(sh int) int { return len(q.addrs[sh]) }

// bitmaps assembles the per-candidate responsive-slot bitmaps from the
// streamed responsive sets, walking shard-locally (no address hashing).
func (q *slotQueue) bitmaps(nCands int, resp map[netmodel.Protocol]*ip6.ShardedSet, protos []netmodel.Protocol) []uint16 {
	out := make([]uint16, nCands)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		for i, a := range q.addrs[sh] {
			for _, proto := range protos {
				if resp[proto].HasInShard(sh, a) {
					ref := q.refs[sh][i]
					out[ref.cand] |= 1 << ref.v
					break
				}
			}
		}
	}
	return out
}

// Run executes one detection round at the given day.
func (d *Detector) Run(ctx context.Context, candidates []ip6.Prefix, day int) (*Result, error) {
	res := &Result{
		Day:        day,
		Aliased:    ip6.NewPrefixSet(),
		Detections: make(map[ip6.Prefix]Detection, len(candidates)),
	}

	// Route the 16 slots per candidate into the sharded queue (reused
	// across rounds), then stream the probe round through the engine:
	// probe workers pull slot addresses shard by shard, and slot
	// membership checks read the sharded responsive sets directly —
	// neither the flat slot-address list nor the result cross product is
	// ever materialized.
	queue := &d.queue
	if err := queue.fill(candidates, day); err != nil {
		return nil, err
	}
	resp, stats, err := d.scanner.StreamResponsiveFrom(ctx, queue, d.cfg.Protocols, day)
	if err != nil {
		return nil, fmt.Errorf("apd: scanning candidates: %w", err)
	}
	res.Probes = int(stats.ProbesSent)

	bitmaps := queue.bitmaps(len(candidates), resp, d.cfg.Protocols)
	for i, p := range candidates {
		bitmap := bitmaps[i]
		merged := bitmap
		hist := d.history[p]
		n := d.cfg.MergeScans
		if n > len(hist) {
			n = len(hist)
		}
		for _, old := range hist[len(hist)-n:] {
			merged |= old
		}
		det := Detection{Prefix: p, Bitmap: bitmap, Merged: merged, Aliased: merged == 0xffff}
		res.Detections[p] = det
		if det.Aliased {
			res.Aliased.Add(p)
		}
		// Record history (bounded).
		hist = append(hist, bitmap)
		if len(hist) > d.cfg.MergeScans+1 {
			hist = hist[len(hist)-d.cfg.MergeScans-1:]
		}
		d.history[p] = hist
	}
	return res, nil
}

// ResponsiveSlots counts the responding slots in a bitmap.
func ResponsiveSlots(bitmap uint16) int { return bits.OnesCount16(bitmap) }

// Aggregate collapses nested aliased prefixes: descendants of an aliased
// prefix are dropped so the set reflects maximal aliased regions (an
// aliased /32 subsumes its aliased /36s).
func Aggregate(aliased []ip6.Prefix) []ip6.Prefix {
	sorted := append([]ip6.Prefix(nil), aliased...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Bits() != sorted[j].Bits() {
			return sorted[i].Bits() < sorted[j].Bits()
		}
		return ip6.ComparePrefix(sorted[i], sorted[j]) < 0
	})
	kept := ip6.NewPrefixSet()
	var out []ip6.Prefix
	for _, p := range sorted {
		if _, covered := kept.Match(p.Addr()); covered {
			continue
		}
		kept.Add(p)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// HistoryEntry is one prefix's response-pattern history — the state a
// checkpoint must carry so a resumed timeline's MergeScans window sees
// exactly the rounds an uninterrupted run would.
type HistoryEntry struct {
	Prefix ip6.Prefix
	Counts []uint16
}

// ExportHistory returns the per-prefix detection history sorted by
// prefix — the deterministic order checkpoint encodings require.
func (d *Detector) ExportHistory() []HistoryEntry {
	out := make([]HistoryEntry, 0, len(d.history))
	for p, h := range d.history {
		out = append(out, HistoryEntry{Prefix: p, Counts: h})
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// ImportHistory replaces the detector's history with the given entries
// (copying the count slices).
func (d *Detector) ImportHistory(entries []HistoryEntry) {
	d.history = make(map[ip6.Prefix][]uint16, len(entries))
	for _, e := range entries {
		d.history[e.Prefix] = append([]uint16(nil), e.Counts...)
	}
}
