// Package apd implements the IPv6 Hitlist's multi-level aliased prefix
// detection (Section 3.1 and 5 of the paper).
//
// A prefix is tested by choosing one pseudo-random address inside each of
// its 16 four-bit subprefixes and probing them with ICMP and TCP/80. If all
// 16 respond — merged across the two protocols and the previous three
// scans, to absorb probe loss — the prefix is labeled aliased (the paper
// suggests "fully responsive" as the better name).
//
// Candidates come from three levels: every BGP-announced prefix, every /64
// with at least one input address, and longer prefixes (in 4-bit steps up
// to /120) holding at least 100 input addresses.
package apd

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
)

// Config parameterizes the detector.
type Config struct {
	// MinAddrsLongPrefix is the input-address threshold for testing
	// prefixes longer than /64 (the paper uses 100).
	MinAddrsLongPrefix int

	// MaxPrefixLen bounds candidate length; the paper observed aliased
	// prefixes up to /120.
	MaxPrefixLen int

	// MergeScans is how many previous detection rounds are merged into
	// the current one (the paper merges with the previous three scans).
	MergeScans int

	// Protocols probed per slot; the service uses ICMP and TCP/80.
	Protocols []netmodel.Protocol
}

// DefaultConfig mirrors the service configuration.
func DefaultConfig() Config {
	return Config{
		MinAddrsLongPrefix: 100,
		MaxPrefixLen:       120,
		MergeScans:         3,
		Protocols:          []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80},
	}
}

// Candidates derives the multi-level candidate set from the BGP table and
// the service input addresses.
func Candidates(bgp []ip6.Prefix, input []ip6.Addr, cfg Config) []ip6.Prefix {
	seen := make(map[ip6.Prefix]struct{})
	var out []ip6.Prefix
	add := func(p ip6.Prefix) {
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}

	// Level 1: BGP-announced prefixes (subdividable ones only).
	for _, p := range bgp {
		if p.Bits()+4 <= 128 && p.Bits() <= cfg.MaxPrefixLen {
			add(p)
		}
	}

	// Level 2: /64s with at least one input address.
	// Level 3: longer prefixes (4-bit steps) with ≥ threshold addresses.
	perLen := make(map[int]map[ip6.Prefix]int)
	for l := 68; l <= cfg.MaxPrefixLen; l += 4 {
		perLen[l] = make(map[ip6.Prefix]int)
	}
	for _, a := range input {
		add(ip6.Slash64(a))
		for l := 68; l <= cfg.MaxPrefixLen; l += 4 {
			perLen[l][ip6.PrefixFrom(a, l)]++
		}
	}
	lens := make([]int, 0, len(perLen))
	for l := range perLen {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		for p, n := range perLen[l] {
			if n >= cfg.MinAddrsLongPrefix {
				add(p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// Detection records the outcome for one candidate in one round.
type Detection struct {
	Prefix ip6.Prefix
	// Bitmap has bit i set when slot i (subprefix nibble i) responded in
	// the current round.
	Bitmap uint16
	// Merged includes the previous MergeScans rounds.
	Merged uint16
	// Aliased is Merged == 0xffff.
	Aliased bool
}

// Result is one detection round over a candidate set.
type Result struct {
	Day        int
	Aliased    *ip6.PrefixSet
	Detections map[ip6.Prefix]Detection
	// Probes is the number of scanner probes this round used.
	Probes int
}

// Detector runs rounds of multi-level APD, remembering per-prefix history
// for the cross-scan merge.
type Detector struct {
	scanner *scan.Scanner
	cfg     Config
	history map[ip6.Prefix][]uint16
}

// NewDetector builds a detector using the given scanner.
func NewDetector(s *scan.Scanner, cfg Config) *Detector {
	if cfg.MinAddrsLongPrefix <= 0 {
		cfg.MinAddrsLongPrefix = 100
	}
	if cfg.MaxPrefixLen == 0 {
		cfg.MaxPrefixLen = 120
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}
	}
	return &Detector{scanner: s, cfg: cfg, history: make(map[ip6.Prefix][]uint16)}
}

// slotSalt hoists the stream label hash out of SlotAddr: seeding with
// mix^slotSalt draws identically to rng.NewStream(mix, "apd-slot"), and
// the value-typed stream stays on the stack — SlotAddr runs 16 times per
// candidate per round, so the per-slot heap stream was a hotspot.
var slotSalt = rng.HashString("apd-slot")

// SlotAddr returns the pseudo-random probe address for slot v (0–15) of
// prefix p in the round keyed by day. The draw is deterministic per
// (prefix, slot, day): stable within a round, fresh across rounds.
func SlotAddr(p ip6.Prefix, v byte, day int) ip6.Addr {
	sub := p.SubprefixOfNibble(v)
	r := rng.NewStreamSeed(rng.Mix(p.Addr().Hi(), p.Addr().Lo(), uint64(p.Bits()), uint64(v), uint64(day)) ^ slotSalt)
	return sub.RandomAddr(&r)
}

// Run executes one detection round at the given day.
func (d *Detector) Run(ctx context.Context, candidates []ip6.Prefix, day int) (*Result, error) {
	res := &Result{
		Day:        day,
		Aliased:    ip6.NewPrefixSet(),
		Detections: make(map[ip6.Prefix]Detection, len(candidates)),
	}

	// Build the probe list: 16 slots per candidate.
	targets := make([]ip6.Addr, 0, len(candidates)*16)
	for _, p := range candidates {
		if p.Bits()+4 > 128 {
			return nil, fmt.Errorf("apd: candidate %v too long to subdivide", p)
		}
		for v := byte(0); v < 16; v++ {
			targets = append(targets, SlotAddr(p, v, day))
		}
	}

	// Stream the probe run through the sharded engine; slot membership
	// checks read the sharded sets directly, so the full result cross
	// product is never materialized and no merged copy is built.
	resp, stats, err := d.scanner.StreamResponsive(ctx, targets, d.cfg.Protocols, day)
	if err != nil {
		return nil, fmt.Errorf("apd: scanning candidates: %w", err)
	}
	res.Probes = int(stats.ProbesSent)

	for i, p := range candidates {
		var bitmap uint16
		for v := 0; v < 16; v++ {
			a := targets[i*16+v]
			for _, proto := range d.cfg.Protocols {
				if resp[proto].Has(a) {
					bitmap |= 1 << v
					break
				}
			}
		}
		merged := bitmap
		hist := d.history[p]
		n := d.cfg.MergeScans
		if n > len(hist) {
			n = len(hist)
		}
		for _, old := range hist[len(hist)-n:] {
			merged |= old
		}
		det := Detection{Prefix: p, Bitmap: bitmap, Merged: merged, Aliased: merged == 0xffff}
		res.Detections[p] = det
		if det.Aliased {
			res.Aliased.Add(p)
		}
		// Record history (bounded).
		hist = append(hist, bitmap)
		if len(hist) > d.cfg.MergeScans+1 {
			hist = hist[len(hist)-d.cfg.MergeScans-1:]
		}
		d.history[p] = hist
	}
	return res, nil
}

// ResponsiveSlots counts the responding slots in a bitmap.
func ResponsiveSlots(bitmap uint16) int { return bits.OnesCount16(bitmap) }

// Aggregate collapses nested aliased prefixes: descendants of an aliased
// prefix are dropped so the set reflects maximal aliased regions (an
// aliased /32 subsumes its aliased /36s).
func Aggregate(aliased []ip6.Prefix) []ip6.Prefix {
	sorted := append([]ip6.Prefix(nil), aliased...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Bits() != sorted[j].Bits() {
			return sorted[i].Bits() < sorted[j].Bits()
		}
		return ip6.ComparePrefix(sorted[i], sorted[j]) < 0
	})
	kept := ip6.NewPrefixSet()
	var out []ip6.Prefix
	for _, p := range sorted {
		if _, covered := kept.Match(p.Addr()); covered {
			continue
		}
		kept.Add(p)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}
