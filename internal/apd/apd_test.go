package apd

import (
	"context"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
)

func testWorld(t testing.TB) *netmodel.Network {
	t.Helper()
	ases := []*netmodel.AS{
		{ASN: 16509, Name: "Amazon", Country: "US", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2600:9000::/28")}, AnnouncedFrom: []int{0}},
		{ASN: 100, Name: "Plain", Country: "DE", Category: netmodel.CatISP,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(3, netmodel.NewASTable(ases))
	// Aliased /48 inside Amazon.
	n.AddAlias(&netmodel.AliasRule{
		Prefix: ip6.MustParsePrefix("2600:9000:1::/48"), AS: ases[0],
		Protos:   netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
		Backends: 4, BornDay: 0, DeathDay: netmodel.Forever, FP: netmodel.FPLinuxLB, MTU: 1500,
	})
	// Aliased /64 (ICMP only, like Trafficforce).
	n.AddAlias(&netmodel.AliasRule{
		Prefix: ip6.MustParsePrefix("2001:100:0:aaaa::/64"), AS: ases[1],
		Protos:   netmodel.ProtoSetOf(netmodel.ICMP),
		Backends: 1, BornDay: 0, DeathDay: netmodel.Forever, FP: netmodel.FPBSD, MTU: 1500,
	})
	// Ordinary sparse hosts in a normal /64: must NOT be aliased.
	for i := uint64(0); i < 5; i++ {
		n.AddHost(&netmodel.Host{
			Addr:    ip6.MustParsePrefix("2001:100:0:1::/64").NthAddr(i + 1),
			Protos:  netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
			BornDay: 0, DeathDay: netmodel.Forever, UptimePermille: 1000, FP: netmodel.FPLinux, MTU: 1500,
		})
	}
	return n
}

func lossless(n *netmodel.Network) *scan.Scanner {
	cfg := scan.DefaultConfig(1)
	cfg.LossRate = 0
	return scan.New(n, cfg)
}

func TestCandidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinAddrsLongPrefix = 3
	bgp := []ip6.Prefix{ip6.MustParsePrefix("2600:9000::/28"), ip6.MustParsePrefix("2001:100::/32")}

	var input []ip6.Addr
	// One address in a /64 → /64 candidate.
	input = append(input, ip6.MustParseAddr("2001:100:0:1::1"))
	// Three addresses dense in one /112 → /68.../112 candidates appear.
	for i := uint64(0); i < 3; i++ {
		input = append(input, ip6.MustParsePrefix("2001:100:0:2::aa00/112").NthAddr(i))
	}

	cands := Candidates(bgp, input, cfg)
	want := map[string]bool{
		"2600:9000::/28":    true,
		"2001:100::/32":     true,
		"2001:100:0:1::/64": true,
		"2001:100:0:2::/64": true,
	}
	got := map[string]bool{}
	for _, c := range cands {
		got[c.String()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing candidate %s (have %v)", w, cands)
		}
	}
	// Long-prefix levels present for the dense /112 cluster.
	found112 := false
	for _, c := range cands {
		if c.Bits() == 112 && c.Contains(ip6.MustParseAddr("2001:100:0:2::aa01")) {
			found112 = true
		}
	}
	if !found112 {
		t.Error("dense cluster did not yield /112 candidate")
	}
	// No duplicates.
	seen := map[ip6.Prefix]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
}

func TestDetectAliased(t *testing.T) {
	n := testWorld(t)
	d := NewDetector(lossless(n), DefaultConfig())
	cands := []ip6.Prefix{
		ip6.MustParsePrefix("2600:9000:1::/48"),     // aliased
		ip6.MustParsePrefix("2001:100:0:aaaa::/64"), // aliased (ICMP only)
		ip6.MustParsePrefix("2001:100:0:1::/64"),    // sparse hosts
		ip6.MustParsePrefix("2600:9000::/28"),       // BGP super-prefix: only 1/16 slots aliased
	}
	res, err := d.Run(context.Background(), cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aliased.Has(cands[0]) {
		t.Error("aliased /48 not detected")
	}
	if !res.Aliased.Has(cands[1]) {
		t.Error("ICMP-only aliased /64 not detected")
	}
	if res.Aliased.Has(cands[2]) {
		t.Error("sparse /64 falsely aliased")
	}
	if res.Aliased.Has(cands[3]) {
		t.Error("super-prefix falsely aliased")
	}
	det := res.Detections[cands[2]]
	if det.Aliased || det.Bitmap == 0xffff {
		t.Errorf("sparse detection: %+v", det)
	}
	if ResponsiveSlots(res.Detections[cands[0]].Bitmap) != 16 {
		t.Errorf("aliased slots: %d", ResponsiveSlots(res.Detections[cands[0]].Bitmap))
	}
	if res.Probes == 0 {
		t.Error("no probes counted")
	}
}

func TestMergeAcrossScansAbsorbsLoss(t *testing.T) {
	n := testWorld(t)
	// A very lossy scanner: single rounds will miss slots, the 3-scan
	// merge recovers them.
	cfg := scan.DefaultConfig(2)
	cfg.LossRate = 0.25
	cfg.Retries = 0
	s := scan.New(n, cfg)

	aliased := ip6.MustParsePrefix("2600:9000:1::/48")

	noMerge := NewDetector(s, Config{MergeScans: 0})
	merge := NewDetector(s, Config{MergeScans: 3})

	missesNoMerge, missesMerge := 0, 0
	for day := 0; day < 12; day++ {
		r1, err := noMerge.Run(context.Background(), []ip6.Prefix{aliased}, day)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Aliased.Has(aliased) {
			missesNoMerge++
		}
		r2, err := merge.Run(context.Background(), []ip6.Prefix{aliased}, day)
		if err != nil {
			t.Fatal(err)
		}
		if !r2.Aliased.Has(aliased) && day >= 3 {
			missesMerge++
		}
	}
	// With 25% loss and no retries, P(all 16 slots hit in one round via 2
	// protocols) is ~0.36; merged over 4 rounds it should almost always
	// succeed.
	if missesNoMerge < 3 {
		t.Errorf("expected frequent single-round misses, got %d/12", missesNoMerge)
	}
	if missesMerge > 2 {
		t.Errorf("merged detection missed %d times", missesMerge)
	}
}

func TestSlotAddrProperties(t *testing.T) {
	p := ip6.MustParsePrefix("2600:9000:1::/48")
	seenNibbles := map[byte]bool{}
	for v := byte(0); v < 16; v++ {
		a := SlotAddr(p, v, 7)
		if !p.Contains(a) {
			t.Fatalf("slot %d outside prefix: %v", v, a)
		}
		// The slot address sits in the v-th /52 subprefix.
		if a.Nibble(12) != v {
			t.Errorf("slot %d landed in nibble %d", v, a.Nibble(12))
		}
		seenNibbles[a.Nibble(12)] = true
		// Deterministic per day.
		if SlotAddr(p, v, 7) != a {
			t.Error("SlotAddr not deterministic")
		}
		// Fresh randomness across days.
		if SlotAddr(p, v, 8) == a {
			t.Error("SlotAddr identical across days")
		}
	}
	if len(seenNibbles) != 16 {
		t.Errorf("slots cover %d/16 subprefixes", len(seenNibbles))
	}
}

func TestAggregate(t *testing.T) {
	in := []ip6.Prefix{
		ip6.MustParsePrefix("2600:9000:1:2::/64"), // inside the /48
		ip6.MustParsePrefix("2600:9000:1::/48"),
		ip6.MustParsePrefix("2001:100:0:aaaa::/64"), // independent
		ip6.MustParsePrefix("2600:9000:1:2:3::/80"), // deeper nesting
	}
	out := Aggregate(in)
	if len(out) != 2 {
		t.Fatalf("aggregate: %v", out)
	}
	want := map[string]bool{"2600:9000:1::/48": true, "2001:100:0:aaaa::/64": true}
	for _, p := range out {
		if !want[p.String()] {
			t.Errorf("unexpected aggregate member %v", p)
		}
	}
	// Idempotent and duplicate-safe.
	out2 := Aggregate(append(out, out...))
	if len(out2) != 2 {
		t.Errorf("re-aggregate: %v", out2)
	}
	if len(Aggregate(nil)) != 0 {
		t.Error("empty aggregate")
	}
}

func TestCandidateTooLongRejected(t *testing.T) {
	n := testWorld(t)
	d := NewDetector(lossless(n), DefaultConfig())
	_, err := d.Run(context.Background(), []ip6.Prefix{ip6.MustParsePrefix("2001:100::1/128")}, 1)
	if err == nil {
		t.Error("/128 candidate accepted")
	}
}

func BenchmarkDetectRound(b *testing.B) {
	n := testWorld(b)
	d := NewDetector(lossless(n), DefaultConfig())
	cands := []ip6.Prefix{
		ip6.MustParsePrefix("2600:9000:1::/48"),
		ip6.MustParsePrefix("2001:100:0:aaaa::/64"),
		ip6.MustParsePrefix("2001:100:0:1::/64"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(context.Background(), cands, i); err != nil {
			b.Fatal(err)
		}
	}
}
